// RegionServer: hosts regions, serves puts/gets/scans for their keys,
// assigns timestamps, writes the shared per-server write-ahead log, and
// runs the coprocessor-style index maintenance hooks at the three points
// Diff-Index needs (Section 7):
//
//   * post-apply   — after WAL append + memtable apply of a base put,
//                    still under the region's shared flush gate
//                    (SyncFullObserver / SyncInsertObserver / AsyncObserver);
//   * pre/post-flush — around a memtable flush, with the flush gate held
//                    exclusively (the "pause & drain" of Figure 5);
//   * WAL replay   — during region recovery, re-enqueuing every replayed
//                    base put into the AUQ (Section 5.3).
//
// WAL entries carry a per-server sequence number; each region persists the
// highest sequence covered by its last flush (WAL roll-forward), so replay
// after a crash applies exactly the suffix the disk stores are missing and
// log files whose edits are all flushed are garbage-collected.

#ifndef DIFFINDEX_CLUSTER_REGION_SERVER_H_
#define DIFFINDEX_CLUSTER_REGION_SERVER_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/base_row_cache.h"
#include "cluster/catalog.h"
#include "cluster/region.h"
#include "lsm/wal.h"
#include "net/fabric.h"
#include "net/message.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/timestamp_oracle.h"

namespace diffindex {

// One logged edit: every cell mutation of one put, applied atomically to
// one region.
struct WalEdit {
  std::string table;
  uint64_t region_id = 0;
  uint64_t seq = 0;  // per-server, monotonically increasing
  std::string row;
  std::vector<Cell> cells;
  Timestamp ts = 0;

  void EncodeTo(std::string* out) const;
  static bool DecodeFrom(Slice* in, WalEdit* edit);
};

// Implemented by core::IndexManager (the Diff-Index coprocessors).
class IndexMaintenanceHooks {
 public:
  virtual ~IndexMaintenanceHooks() = default;

  // Runs the scheme-specific index maintenance for a just-applied base
  // put. Called with the region's flush gate held shared. The returned
  // status is what the client observes for the overall put.
  virtual Status PostApply(const PutRequest& put, Timestamp ts) = 0;

  // Called with the flush gate held exclusively, before the memtable
  // swap: pause AUQ intake and wait until the APS drains it.
  virtual void PreFlush(const std::string& table) = 0;
  // Called after the flush completes: resume AUQ intake.
  virtual void PostFlush(const std::string& table) = 0;

  // A base put replayed from the WAL during recovery: re-enqueue its index
  // work (idempotent; Section 5.3 requirement (2)).
  virtual void OnWalReplay(const PutRequest& put, Timestamp ts) = 0;

  // A region finished opening (including any WAL replay): rebuild its
  // region-co-located local indexes from the base data.
  virtual void OnRegionOpened(const std::string& table,
                              uint64_t region_id) = 0;

  // Monitoring: current AUQ depth (exported via heartbeats).
  virtual uint64_t QueueDepth() const = 0;
};

struct RegionServerOptions {
  LsmOptions lsm;  // template; block_cache is created per server if null
  size_t block_cache_bytes = 64 << 20;
  wal::SyncMode wal_sync = wal::SyncMode::kNone;
  // Roll the active WAL segment once it reaches this size. Checked on the
  // append path (the segment is synced before it is retired, so group-
  // commit acks never depend on a file the roll already closed) and again
  // after each flush. Smaller segments tighten the GC granularity at the
  // cost of more files. Exports `wal.segments`.
  uint64_t wal_segment_bytes = 8 << 20;
  // Background WAL GC sweep interval: deletes closed segments whose edits
  // are all covered by region flush checkpoints (never the active tail).
  // 0 disables the thread; GC still runs opportunistically after every
  // flush. Exports `wal.gc_deleted`.
  int wal_gc_interval_ms = 0;
  // When false, recovery ignores flush checkpoints and replays the dead
  // server's full WAL history for the region (the pre-checkpoint
  // behavior; bench_recovery's baseline). Replay is idempotent, so this
  // only costs time.
  bool recovery_use_checkpoints = true;
  // Group-commit window (wal_sync == kGroupCommit): the sync leader waits
  // this long before issuing the shared fsync, letting more concurrent
  // appends join the batch. 0 = sync immediately (batching still happens
  // naturally while a sync is in flight). Exports `wal.group_size`.
  int wal_group_window_micros = 0;
  // Write-through base-row cache capacity (see cluster/base_row_cache.h):
  // serves the RB reads of sync-full maintenance and read repair from
  // memory. 0 disables. Exports `base_cache.hit` / `base_cache.miss`.
  size_t base_row_cache_bytes = 4 << 20;
  // Heartbeat interval; 0 disables the background heartbeat thread (tests
  // drive failure detection explicitly).
  int heartbeat_interval_ms = 0;
  // Admission control (0 disables): once the region's running flush has
  // held (or queued on) the exclusive gate for more than this long, new
  // puts are delayed instead of piling onto the gate. Exports
  // `admission.delayed` / `admission.delayed_micros` / `admission.rejected`.
  uint64_t admission_stall_micros = 0;
  // Bounded delay budget per admitted put: a put waits (in 1ms slices) up
  // to this long for the stall to clear, then bounces with
  // kResourceExhausted — the client retries with backoff.
  uint64_t admission_max_delay_micros = 20000;
  // Compaction pacing: when >= 0 and the region's disk-store count reaches
  // lsm.compaction_trigger + this slack, the L0 debt counts as stall
  // pressure on the same admission path (delay, then reject), slowing
  // writers down until the flush-time compaction catches up. -1 disables
  // the L0 leg.
  int admission_l0_slack = -1;
  // Observability sinks (either may be null): server-side spans
  // (`span.rs.put.<scheme>`), put/flush counters, and the drain-before-
  // flush / flush-stall timing histograms.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceCollector* traces = nullptr;
};

class RegionServer {
 public:
  RegionServer(NodeId id, std::string data_root, Fabric* fabric,
               const RegionServerOptions& options);
  ~RegionServer();

  RegionServer(const RegionServer&) = delete;
  RegionServer& operator=(const RegionServer&) = delete;

  // Registers the fabric endpoint and opens the WAL.
  Status Start();
  // Graceful stop: final flush, close WAL, unregister. A crash is
  // simulated by destroying the server without calling this.
  Status Stop();
  // Crash simulation: halts background threads without flushing anything;
  // memtable contents survive only through the WAL.
  void Crash();

  NodeId id() const { return id_; }
  const std::string& wal_dir() const { return wal_dir_; }

  void UpdateCatalog(CatalogSnapshot snapshot);
  CatalogSnapshot catalog() const;

  // Must be set before any indexed put arrives; may be null (no indexes).
  void SetHooks(IndexMaintenanceHooks* hooks) { hooks_ = hooks; }

  // ---- Region lifecycle (control plane, called by the master) ----

  Status OpenRegion(const RegionInfoWire& info);
  // Opens the region and replays `wal_paths` (the dead server's logs,
  // "split" down to this region by filtering). The master flushes the
  // region afterwards (recovery phase 2) so the recovered state becomes
  // durable under this server's own WAL regime.
  Status OpenRegionWithRecovery(const RegionInfoWire& info,
                                const std::vector<std::string>& wal_paths);
  Status CloseRegion(const std::string& table, uint64_t region_id);
  std::vector<RegionInfoWire> HostedRegions() const;

  // Online region split: materializes two daughter regions covering
  // [start, split) and [split, end), swaps them in atomically, and
  // retires the parent. Writes to the parent block for the duration (the
  // flush gate); reads keep being served from the parent until the swap.
  // `left` and `right` carry the daughters' new region ids (assigned by
  // the master); their ranges must partition the parent's at `split_key`.
  Status SplitRegion(const std::string& table, uint64_t region_id,
                     const std::string& split_key,
                     const RegionInfoWire& left, const RegionInfoWire& right);

  // Region move, source side: fences the region against further writes,
  // flushes it durably (draining the AUQ first), and unhosts it. The
  // region's data directory on shared storage is then complete; the new
  // owner opens it with a plain OpenRegion.
  Status CloseRegionForMove(const std::string& table, uint64_t region_id);

  // ---- Data plane ----

  // Fabric handler (dispatches on MsgType).
  Status Handle(MsgType type, Slice body, std::string* response);

  // Local cell read, used by the index maintenance hooks: the coprocessor
  // runs on the server that holds the base region, so RB(k, ts) is a local
  // LSM read (disk cost applies, no network hop) — unless the base-row
  // cache answers it.
  Status LocalGetCell(const std::string& table, const Slice& row,
                      const Slice& column, Timestamp read_ts,
                      std::string* value, Timestamp* version_ts);

  BaseRowCache* base_row_cache() { return base_row_cache_.get(); }

  // ---- Local (region-co-located) indexes, Section 3.1 ----

  // Applies one local index mutation to the region hosting base_row. No
  // WAL: the local index is rebuilt from base data on region open.
  Status ApplyLocalIndex(const std::string& table, const Slice& base_row,
                         const std::string& index_name,
                         const std::string& index_row, Timestamp ts,
                         bool is_delete);

  // Scans one region's local index (the per-region leg of a broadcast
  // query).
  Status ScanLocalIndex(const std::string& table, uint64_t region_id,
                        const std::string& index_name,
                        const std::string& start_key,
                        const std::string& end_key, Timestamp read_ts,
                        uint32_t limit, std::vector<RawEntry>* entries);

  // Full row scan of one hosted region (local index rebuild).
  Status ScanRegionRows(const std::string& table, uint64_t region_id,
                        std::vector<ScannedRow>* rows);

  // Forces a flush of every region (graceful shutdown, tests).
  Status FlushAll();
  Status FlushRegion(const std::string& table, uint64_t region_id);
  Status CompactRegion(const std::string& table, uint64_t region_id);

  TimestampOracle* oracle() { return &oracle_; }
  Fabric* fabric() { return fabric_; }
  obs::MetricsRegistry* metrics() const { return options_.metrics; }
  obs::TraceCollector* traces() const { return options_.traces; }

  // Stats for the experiment harness.
  uint64_t wal_appends() const { return wal_appends_.load(); }
  uint64_t flush_count() const { return flush_count_.load(); }
  // Total microseconds puts spent stalled behind flushes (drain + swap),
  // for the flush-stall measurement of Section 5.3.
  uint64_t flush_stall_micros() const { return flush_stall_micros_.load(); }

 private:
  struct WalFile {
    uint64_t file_seq = 0;
    std::string path;
    std::unique_ptr<wal::Writer> writer;  // null once closed
    // Highest edit seq per region recorded in this file.
    std::map<std::pair<std::string, uint64_t>, uint64_t> region_max_seq;
  };

  Status HandlePut(Slice body, std::string* response);
  // Admission control (see RegionServerOptions::admission_stall_micros):
  // returns OK when the put may proceed to the flush gate, possibly after
  // a bounded delay; kResourceExhausted when the region is stalled past
  // the delay budget. Called before any lock is taken.
  Status AdmitPut(const std::shared_ptr<Region>& region);
  // True when `region` is currently under admission pressure: its running
  // flush is older than admission_stall_micros, or its disk-store debt
  // crossed the compaction-pacing slack.
  bool AdmissionStalled(const std::shared_ptr<Region>& region) const;
  Status HandleMultiPut(Slice body, std::string* response);
  // The shared put pipeline: validate, route, gate, timestamp, WAL,
  // memtable, coprocessors, flush check.
  Status ExecutePut(const PutRequest& put, PutResponse* resp);
  Status HandleGetCell(Slice body, std::string* response);
  Status HandleGetRow(Slice body, std::string* response);
  Status HandleScanRows(Slice body, std::string* response);
  Status HandleRawScan(Slice body, std::string* response);
  Status HandleRawDelete(Slice body, std::string* response);
  Status HandleRegionAdmin(MsgType type, Slice body);
  Status HandleLocalIndexScan(Slice body, std::string* response);
  Status HandleMultiGet(Slice body, std::string* response);
  Status HandleIndexScan(Slice body, std::string* response);

  // Region owning `row` in `table`, or null.
  std::shared_ptr<Region> FindRegion(const std::string& table,
                                     const Slice& row) const;
  std::shared_ptr<Region> FindRegionById(const std::string& table,
                                         uint64_t region_id) const;

  Status RollWalLocked() REQUIRES(wal_mu_);
  void MaybeGcWalFilesLocked() REQUIRES(wal_mu_);
  // Syncs the tail and rolls it when it crossed wal_segment_bytes. A sync
  // failure skips the roll (the tail must be durable before it stops
  // being the sync target, or a group-commit ack could cover an edit that
  // never reached disk).
  void MaybeRollWalLocked() REQUIRES(wal_mu_);
  Status FlushRegionInternal(const std::shared_ptr<Region>& region);
  Status OpenRegionInternal(const RegionInfoWire& info);
  // Future edit sequences must sort after everything a previous owner
  // persisted for an adopted region.
  void AdoptAppliedSeq(uint64_t adopted);
  // Replays this region's edits (seq > recovered_through) from the dead
  // owners' WAL files into the still-unpublished region; replayed puts
  // are appended to *replayed for post-publish AUQ re-enqueue.
  Status ReplayWalForRegion(Region* region, const RegionInfoWire& info,
                            const std::vector<std::string>& wal_paths,
                            uint64_t recovered_through,
                            std::vector<std::pair<PutRequest, Timestamp>>*
                                replayed);
  void WalGcLoop();

  // WAL group commit (wal_sync == kGroupCommit): returns once a sync has
  // covered append ticket `ticket`. Concurrent callers elect one leader
  // that fsyncs for the whole in-flight window; the rest wait on
  // wal_sync_cv_. Called after LogAndApply's append, while the region's
  // write_mu is still held (lock order write_mu -> wal_sync_mu_ ->
  // wal_mu_).
  Status GroupCommitSync(uint64_t ticket) EXCLUDES(wal_sync_mu_);

  // Cell read answered by the base-row cache when it can certify the
  // visible version, else by the region's LSM tree (a cached tombstone
  // yields NotFound without touching the tree).
  Status CachedGet(const std::shared_ptr<Region>& region,
                   const std::string& table, const Slice& row,
                   const Slice& column, Timestamp read_ts, std::string* value,
                   Timestamp* version_ts);

  // Applies one put to a region: assigns the put's timestamp (when
  // `requested_ts` is 0), reads the pre-put old values into *resp when
  // the request asks for them, assigns seq, appends to the WAL and
  // applies cells to the memtable — all inside the region's write_mu
  // critical section. Caller holds the region's flush gate (shared).
  //
  // Timestamp assignment MUST happen under write_mu: it makes ts order
  // equal apply order for same-region puts, which the sync index
  // observers depend on — a retraction read at ts-δ sees every earlier
  // version only if any same-row put with a smaller ts has already
  // applied. Drawing the ts before this section reintroduces a phantom
  // found by the model checker (tests/check/mutation_regression_test.cc
  // keeps the pre-fix assignment armed behind a hook and proves the
  // bounded exploration still catches it).
  Status LogAndApply(const std::shared_ptr<Region>& region,
                     const PutRequest& put, Timestamp requested_ts,
                     Timestamp* assigned_ts, PutResponse* resp);

  void HeartbeatLoop();

  const NodeId id_;
  const std::string data_root_;
  const std::string wal_dir_;
  Fabric* const fabric_;
  RegionServerOptions options_;
  LsmOptions lsm_options_;  // with per-server cache installed

  TimestampOracle oracle_;
  IndexMaintenanceHooks* hooks_ = nullptr;

  // Lock order when more than one is held: region flush gate -> region
  // write_mu -> wal_sync_mu_ -> wal_mu_ -> regions_mu_ (WAL GC reads
  // flushed_seq_ under wal_mu_; the group-commit leader releases
  // wal_sync_mu_ before taking wal_mu_ for the shared sync, so it never
  // holds both). catalog_mu_ and the caches' internal mutexes are leaves.
  // FindRegion's regions_mu_ hold is
  // self-contained: it copies the shared_ptr out and releases before the
  // caller touches any region lock.
  //
  // The order is machine-checked twice: the ACQUIRED_BEFORE annotations
  // below feed the `lock-order` lint rule (acquisition-graph cycle
  // detection), and the LockRank constructor arguments arm the runtime
  // validator (util/lock_order.h) in debug/TSan/DIFFINDEX_CHECK builds.
  mutable SharedMutex regions_mu_ ACQUIRED_AFTER(wal_mu_){
      LockRank::kRegionsMu, "regions_mu_"};
  // key: (table, region_id)
  std::map<std::pair<std::string, uint64_t>, std::shared_ptr<Region>> regions_
      GUARDED_BY(regions_mu_);
  // Seq covered by each region's last flush (mirrors the persisted value).
  std::map<std::pair<std::string, uint64_t>, uint64_t> flushed_seq_
      GUARDED_BY(regions_mu_);

  // Leaf: never held while acquiring another ranked lock.
  mutable Mutex catalog_mu_{LockRank::kLeaf, "catalog_mu_"};
  CatalogSnapshot catalog_ GUARDED_BY(catalog_mu_);

  Mutex wal_mu_ ACQUIRED_BEFORE(regions_mu_)
      ACQUIRED_AFTER(wal_sync_mu_){LockRank::kWalMu, "wal_mu_"};
  std::vector<WalFile> wal_files_
      GUARDED_BY(wal_mu_);  // open tail is wal_files_.back()
  uint64_t next_wal_file_seq_ GUARDED_BY(wal_mu_) = 1;
  std::atomic<uint64_t> next_edit_seq_{1};

  // Group-commit state (kGroupCommit only). Tickets are append ordinals
  // (the wal_appends_ count after the append), so "synced through ticket
  // T" means the first T appends are durable. Acquired between a region's
  // write_mu and wal_mu_ — see the lock-order comment above.
  Mutex wal_sync_mu_ ACQUIRED_BEFORE(wal_mu_)
      ACQUIRED_AFTER(write_mu_){LockRank::kWalSyncMu, "wal_sync_mu_"};
  CondVar wal_sync_cv_;
  uint64_t synced_ticket_ GUARDED_BY(wal_sync_mu_) = 0;
  bool wal_sync_in_progress_ GUARDED_BY(wal_sync_mu_) = false;

  // Write-through base-row cache (null when base_row_cache_bytes == 0).
  std::unique_ptr<BaseRowCache> base_row_cache_;

  std::atomic<bool> stopped_{false};
  std::thread heartbeat_thread_;
  std::thread wal_gc_thread_;

  std::atomic<uint64_t> wal_appends_{0};
  std::atomic<uint64_t> flush_count_{0};
  std::atomic<uint64_t> flush_stall_micros_{0};

  // Cached registry instruments (null when options_.metrics is null).
  obs::Counter* rs_put_counter_ = nullptr;
  obs::Counter* admission_delayed_counter_ = nullptr;
  obs::Counter* admission_delayed_micros_counter_ = nullptr;
  obs::Counter* admission_rejected_counter_ = nullptr;
  obs::Counter* rs_flush_counter_ = nullptr;
  Histogram* flush_stall_hist_ = nullptr;
  Histogram* wal_group_size_hist_ = nullptr;
  obs::Gauge* wal_segments_gauge_ = nullptr;
  obs::Counter* wal_gc_deleted_counter_ = nullptr;
  obs::Counter* wal_replay_skipped_counter_ = nullptr;
  obs::Counter* wal_replayed_counter_ = nullptr;
  obs::Counter* checkpoint_writes_counter_ = nullptr;
  obs::Counter* checkpoint_write_failed_counter_ = nullptr;
  obs::Counter* checkpoint_corrupt_counter_ = nullptr;
};

}  // namespace diffindex

#endif  // DIFFINDEX_CLUSTER_REGION_SERVER_H_
