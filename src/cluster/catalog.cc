#include "cluster/catalog.h"

namespace diffindex {

const char* IndexSchemeName(IndexScheme scheme) {
  switch (scheme) {
    case IndexScheme::kSyncFull:
      return "sync-full";
    case IndexScheme::kSyncInsert:
      return "sync-insert";
    case IndexScheme::kAsyncSimple:
      return "async-simple";
    case IndexScheme::kAsyncSession:
      return "async-session";
  }
  return "unknown";
}

std::string IndexTableNameFor(const std::string& base_table,
                              const std::string& index_name) {
  return "__idx_" + base_table + "_" + index_name;
}

IndexInfoWire ToWire(const IndexDescriptor& index) {
  IndexInfoWire wire;
  wire.name = index.name;
  wire.column = index.column;
  wire.scheme = static_cast<uint8_t>(index.scheme);
  wire.index_table = index.index_table;
  wire.extra_columns = index.extra_columns;
  wire.dense_field = index.dense_field;
  if (!index.dense_field.empty()) {
    index.dense_schema.EncodeTo(&wire.dense_schema);
  }
  wire.is_local = index.is_local;
  return wire;
}

IndexDescriptor FromWire(const IndexInfoWire& wire) {
  IndexDescriptor index;
  index.name = wire.name;
  index.column = wire.column;
  index.scheme = static_cast<IndexScheme>(wire.scheme);
  index.index_table = wire.index_table;
  index.extra_columns = wire.extra_columns;
  index.dense_field = wire.dense_field;
  if (!wire.dense_schema.empty()) {
    Slice in(wire.dense_schema);
    (void)DenseColumnSchema::DecodeFrom(&in, &index.dense_schema);
  }
  index.is_local = wire.is_local;
  return index;
}

Status IndexComponentFromCell(const IndexDescriptor& index,
                              const Slice& raw_value,
                              std::string* component) {
  if (index.dense_field.empty()) {
    *component = raw_value.ToString();
    return Status::OK();
  }
  DenseValue value;
  DIFFINDEX_RETURN_NOT_OK(
      index.dense_schema.GetField(raw_value, index.dense_field, &value));
  *component = DenseColumnSchema::EncodeFieldForIndex(value);
  return Status::OK();
}

TableInfoWire ToWire(const TableDescriptor& table) {
  TableInfoWire wire;
  wire.name = table.name;
  wire.is_index_table = table.is_index_table;
  for (const auto& index : table.indexes) {
    wire.indexes.push_back(ToWire(index));
  }
  return wire;
}

TableDescriptor FromWire(const TableInfoWire& wire) {
  TableDescriptor table;
  table.name = wire.name;
  table.is_index_table = wire.is_index_table;
  for (const auto& index : wire.indexes) {
    table.indexes.push_back(FromWire(index));
  }
  return table;
}

Status Catalog::AddTable(const TableDescriptor& table) {
  MutexLock lock(mu_);
  for (const auto& existing : tables_) {
    if (existing.name == table.name) {
      return Status::InvalidArgument("table exists: " + table.name);
    }
  }
  tables_.push_back(table);
  epoch_++;
  return Status::OK();
}

Status Catalog::AddIndex(const std::string& table,
                         const IndexDescriptor& index) {
  MutexLock lock(mu_);
  for (auto& existing : tables_) {
    if (existing.name != table) continue;
    for (const auto& idx : existing.indexes) {
      if (idx.name == index.name) {
        return Status::InvalidArgument("index exists: " + index.name);
      }
    }
    existing.indexes.push_back(index);
    epoch_++;
    return Status::OK();
  }
  return Status::NotFound("no such table: " + table);
}

Status Catalog::DropIndex(const std::string& table,
                          const std::string& index_name) {
  MutexLock lock(mu_);
  for (auto& existing : tables_) {
    if (existing.name != table) continue;
    for (auto it = existing.indexes.begin(); it != existing.indexes.end();
         ++it) {
      if (it->name == index_name) {
        existing.indexes.erase(it);
        epoch_++;
        return Status::OK();
      }
    }
    return Status::NotFound("no such index: " + index_name);
  }
  return Status::NotFound("no such table: " + table);
}

Status Catalog::SetIndexScheme(const std::string& table,
                               const std::string& index_name,
                               IndexScheme scheme) {
  MutexLock lock(mu_);
  for (auto& existing : tables_) {
    if (existing.name != table) continue;
    for (auto& index : existing.indexes) {
      if (index.name == index_name) {
        index.scheme = scheme;
        epoch_++;
        return Status::OK();
      }
    }
    return Status::NotFound("no such index: " + index_name);
  }
  return Status::NotFound("no such table: " + table);
}

std::optional<TableDescriptor> Catalog::GetTable(
    const std::string& name) const {
  MutexLock lock(mu_);
  for (const auto& table : tables_) {
    if (table.name == name) return table;
  }
  return std::nullopt;
}

std::vector<TableDescriptor> Catalog::ListTables() const {
  MutexLock lock(mu_);
  return tables_;
}

uint64_t Catalog::epoch() const {
  MutexLock lock(mu_);
  return epoch_;
}

}  // namespace diffindex
