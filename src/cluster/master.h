// Master: table/index DDL, region assignment, failure detection and
// recovery orchestration — the roles HBase splits between HMaster and
// ZooKeeper (Section 2.2). Heartbeats arrive over the fabric; control
// plane operations (open/close region on a server) are direct calls into
// the in-process RegionServer objects, standing in for the assignment
// messages ZooKeeper would carry.

#ifndef DIFFINDEX_CLUSTER_MASTER_H_
#define DIFFINDEX_CLUSTER_MASTER_H_

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/catalog.h"
#include "cluster/region_server.h"
#include "net/fabric.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace diffindex {

struct MasterOptions {
  // Regions created per table unless explicit split points are given.
  int default_regions_per_table = 8;
  // A server missing heartbeats for this long is declared dead; 0
  // disables the background detector (tests call OnServerDead directly).
  int failure_detect_ms = 0;
  // Per-region open-with-recovery attempts before a region's recovery is
  // reported failed (each failure reassigns to a different survivor).
  int recovery_open_attempts = 6;
  // Recovery counters (`recovery.regions/retries/reassigned/failed`);
  // may be null.
  obs::MetricsRegistry* metrics = nullptr;
};

class Master {
 public:
  Master(Fabric* fabric, std::string data_root, const MasterOptions& options);
  ~Master();

  Master(const Master&) = delete;
  Master& operator=(const Master&) = delete;

  Status Start();
  void Stop();

  // ---- Server membership (control plane) ----

  // The master needs direct handles to in-process servers to open/close
  // regions on them.
  Status RegisterServer(RegionServer* server);
  void DeregisterServer(NodeId server_id);

  // Declares a server dead: reassigns all its regions across the
  // survivors, each new owner replaying the dead servers' WALs for its
  // regions (bounded by the regions' flush checkpoints) and then flushing
  // durably. Recovery is failure-isolated per region: one region's
  // persistent failure never abandons its siblings, transient failures
  // retry with backoff, and a persistent open failure reassigns the
  // region to a different survivor. Re-entrant: a second server dying
  // mid-recovery (even a new owner holding half-recovered regions) is
  // handled by calling this again for the new victim — the full dead-
  // server WAL set stays a replay source until every recovered region
  // has flushed. Returns the first per-region failure, after attempting
  // every region. Called by the failure detector or directly by tests.
  Status OnServerDead(NodeId server_id);

  // ---- DDL ----

  // Creates a table partitioned into regions. Split points empty: the
  // table is split into options.default_regions_per_table uniform ranges
  // over 2-hex-digit prefixes (workload row keys are uniformly hashed).
  Status CreateTable(const std::string& name,
                     std::vector<std::string> split_points = {});

  // Creates a global secondary index: registers metadata and creates the
  // backing key-only index table (itself partitioned across the cluster).
  // Backfill of existing data is the client utility's job
  // (core/backfill.h).
  Status CreateIndex(const std::string& table, const IndexDescriptor& index);
  Status DropIndex(const std::string& table, const std::string& index_name);

  // Live scheme switch (the advisor's output; takes effect on the next
  // put). Switching away from sync-insert should be followed by an
  // IndexBackfill::Cleanse to purge entries whose lazy repair stops.
  Status AlterIndexScheme(const std::string& table,
                          const std::string& index_name, IndexScheme scheme);

  // Online split of a region at `split_key` into two daughters (both
  // initially on the same server, as in HBase; a balancer would move one
  // later). Clients discover the new layout through the usual
  // WrongRegion/refresh path.
  Status SplitRegion(const std::string& table, uint64_t region_id,
                     const std::string& split_key);

  // Moves a region to another live server (the balancer's primitive):
  // fence + flush on the source, open-from-shared-storage on the target.
  // Client writes bounce with WrongRegion during the hand-off and retry
  // through the refreshed layout.
  Status MoveRegion(const std::string& table, uint64_t region_id,
                    NodeId target_server);

  // ---- Introspection ----

  Catalog* catalog() { return &catalog_; }
  std::vector<RegionInfoWire> regions() const;
  uint64_t layout_epoch() const { return layout_epoch_.load(); }
  std::vector<NodeId> live_servers() const;

  // Fabric handler (heartbeats, layout fetches).
  Status Handle(MsgType type, Slice body, std::string* response);

  // Generates uniform hex split points (also used by benchmarks).
  static std::vector<std::string> UniformHexSplits(int num_regions);

 private:
  Status CreateTableLocked(const std::string& name,
                           std::vector<std::string> split_points)
      REQUIRES(mu_);
  void PushCatalogLocked() REQUIRES(mu_);
  void DetectorLoop();

  // Layout entry for (table, region_id), or null. The pointer is valid
  // only while mu_ stays held.
  RegionInfoWire* FindRegionLocked(const std::string& table,
                                   uint64_t region_id) REQUIRES(mu_);
  // One region's isolated recovery: open + bounded replay + publish on
  // the currently assigned owner (retrying, reassigning to a different
  // survivor on persistent open failure). Serialized per region across
  // concurrent OnServerDead calls (waits for a holder to finish); each
  // attempt replays from the CURRENT dead-WAL set, so a second victim's
  // files are never missed. Does NOT flush — see FlushRecoveredRegion.
  Status RecoverRegion(const RegionInfoWire& lost);
  Status RecoverRegionExclusive(const RegionInfoWire& lost);
  // Phase 2 of a recovery: the durable flush on the new owner. Must run
  // only after EVERY region of the dead server has been opened and
  // published: the flush's drain-before-flush barrier waits on the
  // owner's AUQ, whose queued tasks may target sibling regions from the
  // same dead server — draining before those siblings serve deadlocks
  // the failover against its own remaining work.
  Status FlushRecoveredRegion(const RegionInfoWire& lost);
  // Every surviving WAL file of every dead server, per-server
  // numerically ordered.
  std::vector<std::string> ListDeadWalFilesLocked() REQUIRES(mu_);
  // Deletes the dead servers' WAL dirs once nothing can need them for
  // replay: no recovery in flight and no recovered-but-unflushed region.
  void MaybeRetireDeadWalDirsLocked() REQUIRES(mu_);

  Fabric* const fabric_;
  const std::string data_root_;
  const MasterOptions options_;

  Catalog catalog_;  // internally synchronized

  // mu_ guards membership and the region layout; catalog_ has its own
  // lock so catalog snapshots never serialize against layout changes.
  mutable Mutex mu_;
  std::map<NodeId, RegionServer*> servers_ GUARDED_BY(mu_);
  std::map<NodeId, uint64_t> last_heartbeat_micros_ GUARDED_BY(mu_);
  std::vector<RegionInfoWire> regions_ GUARDED_BY(mu_);
  uint64_t next_region_id_ GUARDED_BY(mu_) = 1;
  size_t next_assign_ GUARDED_BY(mu_) = 0;  // round-robin cursor

  // Recovery bookkeeping: WAL dirs of dead servers (replay sources until
  // retired), regions opened-with-replay but not yet durably flushed
  // (they pin the dirs), and the number of OnServerDead calls currently
  // in their recovery phases (re-entrancy is expected: a second victim's
  // recovery runs concurrently with the first).
  std::map<NodeId, std::string> dead_wal_dirs_ GUARDED_BY(mu_);
  std::set<std::pair<std::string, uint64_t>> unflushed_recoveries_
      GUARDED_BY(mu_);
  // Regions with a RecoverRegion in flight: concurrent OnServerDead calls
  // (chained failures) serialize per region here, so the same region is
  // never opened-with-replay twice at once.
  std::set<std::pair<std::string, uint64_t>> recovering_ GUARDED_BY(mu_);
  int active_recoveries_ GUARDED_BY(mu_) = 0;

  // Cached registry instruments (null when options_.metrics is null).
  obs::Counter* recovery_regions_counter_ = nullptr;
  obs::Counter* recovery_retries_counter_ = nullptr;
  obs::Counter* recovery_reassigned_counter_ = nullptr;
  obs::Counter* recovery_failed_counter_ = nullptr;

  std::atomic<uint64_t> layout_epoch_{1};
  std::atomic<bool> stopped_{false};
  std::thread detector_thread_;
};

}  // namespace diffindex

#endif  // DIFFINDEX_CLUSTER_MASTER_H_
