// Master: table/index DDL, region assignment, failure detection and
// recovery orchestration — the roles HBase splits between HMaster and
// ZooKeeper (Section 2.2). Heartbeats arrive over the fabric; control
// plane operations (open/close region on a server) are direct calls into
// the in-process RegionServer objects, standing in for the assignment
// messages ZooKeeper would carry.

#ifndef DIFFINDEX_CLUSTER_MASTER_H_
#define DIFFINDEX_CLUSTER_MASTER_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/catalog.h"
#include "cluster/region_server.h"
#include "net/fabric.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace diffindex {

struct MasterOptions {
  // Regions created per table unless explicit split points are given.
  int default_regions_per_table = 8;
  // A server missing heartbeats for this long is declared dead; 0
  // disables the background detector (tests call OnServerDead directly).
  int failure_detect_ms = 0;
};

class Master {
 public:
  Master(Fabric* fabric, std::string data_root, const MasterOptions& options);
  ~Master();

  Master(const Master&) = delete;
  Master& operator=(const Master&) = delete;

  Status Start();
  void Stop();

  // ---- Server membership (control plane) ----

  // The master needs direct handles to in-process servers to open/close
  // regions on them.
  Status RegisterServer(RegionServer* server);
  void DeregisterServer(NodeId server_id);

  // Declares a server dead: reassigns all its regions across the
  // survivors, each new owner replaying the dead server's WAL for its
  // regions. Called by the failure detector or directly by tests.
  Status OnServerDead(NodeId server_id);

  // ---- DDL ----

  // Creates a table partitioned into regions. Split points empty: the
  // table is split into options.default_regions_per_table uniform ranges
  // over 2-hex-digit prefixes (workload row keys are uniformly hashed).
  Status CreateTable(const std::string& name,
                     std::vector<std::string> split_points = {});

  // Creates a global secondary index: registers metadata and creates the
  // backing key-only index table (itself partitioned across the cluster).
  // Backfill of existing data is the client utility's job
  // (core/backfill.h).
  Status CreateIndex(const std::string& table, const IndexDescriptor& index);
  Status DropIndex(const std::string& table, const std::string& index_name);

  // Live scheme switch (the advisor's output; takes effect on the next
  // put). Switching away from sync-insert should be followed by an
  // IndexBackfill::Cleanse to purge entries whose lazy repair stops.
  Status AlterIndexScheme(const std::string& table,
                          const std::string& index_name, IndexScheme scheme);

  // Online split of a region at `split_key` into two daughters (both
  // initially on the same server, as in HBase; a balancer would move one
  // later). Clients discover the new layout through the usual
  // WrongRegion/refresh path.
  Status SplitRegion(const std::string& table, uint64_t region_id,
                     const std::string& split_key);

  // Moves a region to another live server (the balancer's primitive):
  // fence + flush on the source, open-from-shared-storage on the target.
  // Client writes bounce with WrongRegion during the hand-off and retry
  // through the refreshed layout.
  Status MoveRegion(const std::string& table, uint64_t region_id,
                    NodeId target_server);

  // ---- Introspection ----

  Catalog* catalog() { return &catalog_; }
  std::vector<RegionInfoWire> regions() const;
  uint64_t layout_epoch() const { return layout_epoch_.load(); }
  std::vector<NodeId> live_servers() const;

  // Fabric handler (heartbeats, layout fetches).
  Status Handle(MsgType type, Slice body, std::string* response);

  // Generates uniform hex split points (also used by benchmarks).
  static std::vector<std::string> UniformHexSplits(int num_regions);

 private:
  Status CreateTableLocked(const std::string& name,
                           std::vector<std::string> split_points)
      REQUIRES(mu_);
  void PushCatalogLocked() REQUIRES(mu_);
  void DetectorLoop();

  Fabric* const fabric_;
  const std::string data_root_;
  const MasterOptions options_;

  Catalog catalog_;  // internally synchronized

  // mu_ guards membership and the region layout; catalog_ has its own
  // lock so catalog snapshots never serialize against layout changes.
  mutable Mutex mu_;
  std::map<NodeId, RegionServer*> servers_ GUARDED_BY(mu_);
  std::map<NodeId, uint64_t> last_heartbeat_micros_ GUARDED_BY(mu_);
  std::vector<RegionInfoWire> regions_ GUARDED_BY(mu_);
  uint64_t next_region_id_ GUARDED_BY(mu_) = 1;
  size_t next_assign_ GUARDED_BY(mu_) = 0;  // round-robin cursor

  std::atomic<uint64_t> layout_epoch_{1};
  std::atomic<bool> stopped_{false};
  std::thread detector_thread_;
};

}  // namespace diffindex

#endif  // DIFFINDEX_CLUSTER_MASTER_H_
