#include "cluster/client.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <thread>

#include "util/logging.h"

namespace diffindex {

Client::Client(Fabric* fabric, NodeId self_node, const ClientOptions& options)
    : fabric_(fabric), self_node_(self_node), options_(options),
      backoff_rng_(options.retry_jitter_seed != 0
                       ? options.retry_jitter_seed
                       : 0x9e3779b9u ^ static_cast<uint64_t>(self_node)) {}

void Client::BackoffBeforeRetry(int attempt) {
  if (options_.metrics != nullptr) {
    options_.metrics->GetCounter("client.retries")->Add();
  }
  // Exponential cap: base * 2^(attempt-1), clamped to retry_backoff_max_ms.
  const int base = std::max(options_.retry_backoff_ms, 1);
  const int max_ms = std::max(options_.retry_backoff_max_ms, base);
  int cap = base;
  for (int i = 1; i < attempt && cap < max_ms; i++) cap *= 2;
  cap = std::min(cap, max_ms);
  // Jitter: uniform in [cap/2, cap] so synchronized failures don't retry
  // in lockstep.
  int sleep_ms;
  {
    MutexLock lock(backoff_mu_);
    sleep_ms = static_cast<int>(backoff_rng_.Range(
        static_cast<uint64_t>(std::max(cap / 2, 1)),
        static_cast<uint64_t>(cap)));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
}

void Client::CountRetryExhausted() {
  if (options_.metrics != nullptr) {
    options_.metrics->GetCounter("client.retry_exhausted")->Add();
  }
}

Status Client::RefreshLayout() {
  MutexLock lock(mu_);
  layout_valid_ = false;
  return EnsureLayoutLocked();
}

Status Client::EnsureLayoutLocked() {
  if (layout_valid_) return Status::OK();
  std::string response;
  DIFFINDEX_RETURN_NOT_OK(
      fabric_->Call(self_node_, kMasterNode, MsgType::kFetchLayout, "",
                    &response));
  Slice in(response);
  FetchLayoutResponse layout;
  if (!FetchLayoutResponse::DecodeFrom(&in, &layout)) {
    return Status::Corruption("malformed layout response");
  }
  std::vector<TableDescriptor> tables;
  tables.reserve(layout.tables.size());
  for (const auto& wire : layout.tables) tables.push_back(FromWire(wire));
  catalog_ = CatalogSnapshot(std::move(tables));
  regions_ = std::move(layout.regions);
  std::sort(regions_.begin(), regions_.end(),
            [](const RegionInfoWire& a, const RegionInfoWire& b) {
              if (a.table != b.table) return a.table < b.table;
              return a.start_row < b.start_row;
            });
  layout_valid_ = true;
  layout_refreshes_++;
  if (options_.metrics != nullptr) {
    options_.metrics->GetCounter("client.layout_refreshes")->Add();
  }
  return Status::OK();
}

CatalogSnapshot Client::catalog() {
  MutexLock lock(mu_);
  // Best-effort refresh: on failure the caller gets the cached (possibly
  // empty) snapshot, the same view a data-plane call would retry from.
  EnsureLayoutLocked().IgnoreError();
  return catalog_;
}

Status Client::RouteRow(const std::string& table, const Slice& row,
                        RegionInfoWire* info) {
  MutexLock lock(mu_);
  DIFFINDEX_RETURN_NOT_OK(EnsureLayoutLocked());
  const RegionInfoWire* best = nullptr;
  for (const auto& region : regions_) {
    if (region.table != table) continue;
    if (Slice(region.start_row).compare(row) > 0) continue;
    if (!region.end_row.empty() && row.compare(Slice(region.end_row)) >= 0) {
      continue;
    }
    best = &region;
    break;  // regions are sorted; first match wins
  }
  if (best == nullptr) {
    return Status::NotFound("no region for " + table);
  }
  *info = *best;
  return Status::OK();
}

std::vector<RegionInfoWire> Client::TableRegions(const std::string& table) {
  MutexLock lock(mu_);
  // Best-effort refresh; an unreachable master yields an empty listing.
  EnsureLayoutLocked().IgnoreError();
  std::vector<RegionInfoWire> result;
  for (const auto& region : regions_) {
    if (region.table == table) result.push_back(region);
  }
  return result;
}

Status Client::CallRegion(const std::string& table, const Slice& row,
                          MsgType type, const std::string& body,
                          std::string* response) {
  Status last;
  for (int attempt = 0; attempt <= options_.max_retries; attempt++) {
    if (attempt > 0) {
      // Stale map or mid-failover: refresh and retry with backoff.
      BackoffBeforeRetry(attempt);
      Status rs = RefreshLayout();
      if (!rs.ok()) {
        last = rs;
        continue;
      }
    }
    RegionInfoWire region;
    last = RouteRow(table, row, &region);
    if (!last.ok()) continue;
    response->clear();
    last = fabric_->Call(self_node_, region.server_id, type, body, response);
    if (last.ok()) return last;
    if (!last.IsWrongRegion() && !last.IsUnavailable() &&
        !last.IsResourceExhausted()) {
      return last;
    }
  }
  CountRetryExhausted();
  return last;
}

Status Client::Put(const std::string& table, const std::string& row,
                   std::vector<Cell> cells, Timestamp ts,
                   bool return_old_values, PutResponse* resp) {
  PutRequest req;
  req.table = table;
  req.row = row;
  req.cells = std::move(cells);
  req.ts = ts;
  req.return_old_values = return_old_values;
  std::string body, response;
  req.EncodeTo(&body);
  DIFFINDEX_RETURN_NOT_OK(
      CallRegion(table, row, MsgType::kPut, body, &response));
  if (resp != nullptr) {
    Slice in(response);
    if (!PutResponse::DecodeFrom(&in, resp)) {
      return Status::Corruption("malformed put response");
    }
  }
  return Status::OK();
}

Status Client::PutColumn(const std::string& table, const std::string& row,
                         const std::string& column,
                         const std::string& value) {
  return Put(table, row, {Cell{column, value, false}});
}

Status Client::MultiPut(const std::string& table,
                        std::vector<RowPut> puts) {
  if (puts.empty()) return Status::OK();
  Status last;
  for (int attempt = 0; attempt <= options_.max_retries; attempt++) {
    if (attempt > 0) {
      BackoffBeforeRetry(attempt);
      Status rs = RefreshLayout();
      if (!rs.ok()) {
        last = rs;
        continue;
      }
    }
    // Group by owning server under the current layout.
    std::map<NodeId, MultiPutRequest> batches;
    last = Status::OK();
    for (const RowPut& put : puts) {
      RegionInfoWire region;
      last = RouteRow(table, put.row, &region);
      if (!last.ok()) break;
      PutRequest req;
      req.table = table;
      req.row = put.row;
      req.cells = put.cells;
      batches[region.server_id].puts.push_back(std::move(req));
    }
    if (!last.ok()) continue;

    for (auto& [server_id, batch] : batches) {
      std::string body, response;
      batch.EncodeTo(&body);
      last = fabric_->Call(self_node_, server_id, MsgType::kMultiPut, body,
                           &response);
      if (!last.ok()) break;
      Slice in(response);
      MultiPutResponse resp;
      if (!MultiPutResponse::DecodeFrom(&in, &resp)) {
        return Status::Corruption("malformed multi-put response");
      }
    }
    if (last.ok()) return Status::OK();
    if (!last.IsWrongRegion() && !last.IsUnavailable() &&
        !last.IsResourceExhausted()) {
      return last;
    }
  }
  CountRetryExhausted();
  return last;
}

Status Client::MultiPutBatch(std::vector<PutRequest> puts) {
  if (puts.empty()) return Status::OK();
  Status last;
  for (int attempt = 0; attempt <= options_.max_retries; attempt++) {
    if (attempt > 0) {
      BackoffBeforeRetry(attempt);
      Status rs = RefreshLayout();
      if (!rs.ok()) {
        last = rs;
        continue;
      }
    }
    // Group by owning server under the current layout; unlike MultiPut the
    // requests may target different tables.
    std::map<NodeId, MultiPutRequest> batches;
    last = Status::OK();
    for (const PutRequest& put : puts) {
      RegionInfoWire region;
      last = RouteRow(put.table, put.row, &region);
      if (!last.ok()) break;
      batches[region.server_id].puts.push_back(put);
    }
    if (!last.ok()) continue;

    for (auto& [server_id, batch] : batches) {
      std::string body, response;
      batch.EncodeTo(&body);
      last = fabric_->Call(self_node_, server_id, MsgType::kMultiPut, body,
                           &response);
      if (!last.ok()) break;
      Slice in(response);
      MultiPutResponse resp;
      if (!MultiPutResponse::DecodeFrom(&in, &resp)) {
        return Status::Corruption("malformed multi-put response");
      }
    }
    if (last.ok()) return Status::OK();
    if (!last.IsWrongRegion() && !last.IsUnavailable() &&
        !last.IsResourceExhausted()) {
      return last;
    }
  }
  CountRetryExhausted();
  return last;
}

Status Client::DeleteColumns(const std::string& table, const std::string& row,
                             const std::vector<std::string>& columns,
                             Timestamp ts) {
  std::vector<Cell> cells;
  cells.reserve(columns.size());
  for (const auto& column : columns) {
    cells.push_back(Cell{column, "", /*is_delete=*/true});
  }
  return Put(table, row, std::move(cells), ts);
}

Status Client::GetCell(const std::string& table, const std::string& row,
                       const std::string& column, Timestamp read_ts,
                       std::string* value, Timestamp* version_ts) {
  GetCellRequest req;
  req.table = table;
  req.row = row;
  req.column = column;
  req.read_ts = read_ts;
  std::string body, response;
  req.EncodeTo(&body);
  DIFFINDEX_RETURN_NOT_OK(
      CallRegion(table, row, MsgType::kGetCell, body, &response));
  Slice in(response);
  GetCellResponse resp;
  if (!GetCellResponse::DecodeFrom(&in, &resp)) {
    return Status::Corruption("malformed get response");
  }
  if (!resp.found) return Status::NotFound(table + "/" + row);
  *value = std::move(resp.value);
  if (version_ts != nullptr) *version_ts = resp.ts;
  return Status::OK();
}

Status Client::MultiGet(const std::string& table,
                        const std::vector<MultiGetKey>& keys,
                        Timestamp read_ts,
                        std::vector<MultiGetEntry>* entries) {
  entries->clear();
  if (keys.empty()) return Status::OK();
  Status last;
  for (int attempt = 0; attempt <= options_.max_retries; attempt++) {
    if (attempt > 0) {
      BackoffBeforeRetry(attempt);
      Status rs = RefreshLayout();
      if (!rs.ok()) {
        last = rs;
        continue;
      }
    }
    // Group by owning server, remembering each key's original position so
    // the per-server responses reassemble in request order.
    std::map<NodeId, MultiGetRequest> batches;
    std::map<NodeId, std::vector<size_t>> positions;
    last = Status::OK();
    for (size_t i = 0; i < keys.size(); i++) {
      RegionInfoWire region;
      last = RouteRow(table, keys[i].row, &region);
      if (!last.ok()) break;
      MultiGetRequest& batch = batches[region.server_id];
      batch.table = table;
      batch.read_ts = read_ts;
      batch.keys.push_back(keys[i]);
      positions[region.server_id].push_back(i);
    }
    if (!last.ok()) continue;

    entries->assign(keys.size(), MultiGetEntry{});
    for (auto& [server_id, batch] : batches) {
      std::string body, response;
      batch.EncodeTo(&body);
      last = fabric_->Call(self_node_, server_id, MsgType::kMultiGet, body,
                           &response);
      if (!last.ok()) break;
      Slice in(response);
      MultiGetResponse resp;
      if (!MultiGetResponse::DecodeFrom(&in, &resp) ||
          resp.entries.size() != batch.keys.size()) {
        return Status::Corruption("malformed multi-get response");
      }
      const std::vector<size_t>& pos = positions[server_id];
      for (size_t j = 0; j < resp.entries.size(); j++) {
        (*entries)[pos[j]] = std::move(resp.entries[j]);
      }
    }
    if (last.ok()) return Status::OK();
    if (!last.IsWrongRegion() && !last.IsUnavailable() &&
        !last.IsResourceExhausted()) {
      return last;
    }
  }
  CountRetryExhausted();
  return last;
}

Status Client::IndexScanRegion(const std::string& index_table,
                               const RegionInfoWire& region,
                               const std::string& start_key,
                               const std::string& end_key, Timestamp read_ts,
                               uint32_t limit, IndexScanResponse* resp) {
  IndexScanRequest req;
  req.table = index_table;
  req.region_id = region.region_id;
  req.start_key = start_key;
  req.end_key = end_key;
  req.read_ts = read_ts;
  req.limit = limit;
  std::string body, response;
  req.EncodeTo(&body);
  DIFFINDEX_RETURN_NOT_OK(fabric_->Call(self_node_, region.server_id,
                                        MsgType::kIndexScan, body,
                                        &response));
  Slice in(response);
  if (!IndexScanResponse::DecodeFrom(&in, resp)) {
    return Status::Corruption("malformed index scan response");
  }
  return Status::OK();
}

Status Client::GetRow(const std::string& table, const std::string& row,
                      Timestamp read_ts, GetRowResponse* resp) {
  GetRowRequest req;
  req.table = table;
  req.row = row;
  req.read_ts = read_ts;
  std::string body, response;
  req.EncodeTo(&body);
  DIFFINDEX_RETURN_NOT_OK(
      CallRegion(table, row, MsgType::kGetRow, body, &response));
  Slice in(response);
  if (!GetRowResponse::DecodeFrom(&in, resp)) {
    return Status::Corruption("malformed get-row response");
  }
  return Status::OK();
}

Status Client::ScanRows(const std::string& table,
                        const std::string& start_row,
                        const std::string& end_row, Timestamp read_ts,
                        uint32_t limit, std::vector<ScannedRow>* rows) {
  rows->clear();
  std::string cursor = start_row;
  for (;;) {
    // Each round trip covers one region (the server clamps to its range).
    ScanRowsRequest req;
    req.table = table;
    req.start_row = cursor;
    req.end_row = end_row;
    req.read_ts = read_ts;
    req.limit_rows =
        limit == 0 ? 0 : limit - static_cast<uint32_t>(rows->size());
    std::string body, response;
    req.EncodeTo(&body);
    DIFFINDEX_RETURN_NOT_OK(
        CallRegion(table, cursor, MsgType::kScanRows, body, &response));
    Slice in(response);
    ScanRowsResponse resp;
    if (!ScanRowsResponse::DecodeFrom(&in, &resp)) {
      return Status::Corruption("malformed scan response");
    }
    for (auto& row : resp.rows) rows->push_back(std::move(row));
    if (limit != 0 && rows->size() >= limit) {
      rows->resize(limit);
      return Status::OK();
    }

    // Advance to the next region.
    RegionInfoWire region;
    DIFFINDEX_RETURN_NOT_OK(RouteRow(table, cursor, &region));
    if (region.end_row.empty()) return Status::OK();
    if (!end_row.empty() && region.end_row >= end_row) return Status::OK();
    cursor = region.end_row;
  }
}

Status Client::ScanLocalIndex(const std::string& table,
                              const std::string& index_name,
                              const std::string& start_key,
                              const std::string& end_key, Timestamp read_ts,
                              uint32_t limit,
                              std::vector<RawEntry>* entries) {
  entries->clear();
  Status last = Status::OK();
  for (int attempt = 0; attempt <= options_.max_retries; attempt++) {
    if (attempt > 0) {
      BackoffBeforeRetry(attempt);
      DIFFINDEX_RETURN_NOT_OK(RefreshLayout());
      entries->clear();
    }
    last = Status::OK();
    for (const RegionInfoWire& region : TableRegions(table)) {
      LocalIndexScanRequest req;
      req.table = table;
      req.region_id = region.region_id;
      req.index_name = index_name;
      req.start_key = start_key;
      req.end_key = end_key;
      req.read_ts = read_ts;
      req.limit = limit;
      std::string body, response;
      req.EncodeTo(&body);
      last = fabric_->Call(self_node_, region.server_id,
                           MsgType::kLocalIndexScan, body, &response);
      if (!last.ok()) break;
      Slice in(response);
      RawScanResponse resp;
      if (!RawScanResponse::DecodeFrom(&in, &resp)) {
        return Status::Corruption("malformed local index scan response");
      }
      for (auto& entry : resp.entries) {
        entries->push_back(std::move(entry));
      }
      if (limit != 0 && entries->size() >= limit) {
        entries->resize(limit);
        return Status::OK();
      }
    }
    if (last.ok()) return Status::OK();
    if (!last.IsWrongRegion() && !last.IsUnavailable() &&
        !last.IsResourceExhausted()) {
      return last;
    }
  }
  CountRetryExhausted();
  return last;
}

Status Client::FlushTable(const std::string& table) {
  for (const auto& region : TableRegions(table)) {
    RegionAdminRequest req;
    req.table = table;
    req.region_id = region.region_id;
    std::string body, response;
    req.EncodeTo(&body);
    DIFFINDEX_RETURN_NOT_OK(fabric_->Call(self_node_, region.server_id,
                                          MsgType::kFlushRegion, body,
                                          &response));
  }
  return Status::OK();
}

Status Client::CompactTable(const std::string& table) {
  for (const auto& region : TableRegions(table)) {
    RegionAdminRequest req;
    req.table = table;
    req.region_id = region.region_id;
    std::string body, response;
    req.EncodeTo(&body);
    DIFFINDEX_RETURN_NOT_OK(fabric_->Call(self_node_, region.server_id,
                                          MsgType::kCompactRegion, body,
                                          &response));
  }
  return Status::OK();
}

}  // namespace diffindex
