#include "cluster/region_server.h"

#include <algorithm>
#include <chrono>

#include "check/yield.h"
#ifdef DIFFINDEX_CHECK
#include "check/test_hooks.h"
#endif
#include "cluster/checkpoint.h"
#include "fault/failpoint.h"
#include "obs/trace.h"
#include "util/coding.h"
#include "util/logging.h"

namespace diffindex {

namespace {

// End-of-row bound for cell scans: cell keys are row '\0' column, and rows
// never contain '\0', so [row'\0', row'\x01') covers exactly one row.
std::string RowScanStart(const Slice& row) {
  std::string s(row.data(), row.size());
  s.push_back('\0');
  return s;
}

std::string RowScanEnd(const Slice& row) {
  std::string s(row.data(), row.size());
  s.push_back('\x01');
  return s;
}

bool ValidName(const Slice& s) {
  for (size_t i = 0; i < s.size(); i++) {
    if (s[i] == kCellSeparator) return false;
  }
  return true;
}

// Groups a flat cell-key scan into rows.
void GroupIntoRows(const std::vector<LsmTree::ScanEntry>& entries,
                   std::vector<ScannedRow>* rows) {
  for (const auto& entry : entries) {
    std::string row, column;
    if (!DecodeCellKey(entry.key, &row, &column)) continue;
    if (rows->empty() || rows->back().row != row) {
      rows->push_back(ScannedRow{row, {}});
    }
    rows->back().cells.push_back(RowCell{column, entry.value, entry.ts});
  }
}

}  // namespace

// ---- WalEdit ----

void WalEdit::EncodeTo(std::string* out) const {
  PutLengthPrefixedSlice(out, table);
  PutVarint64(out, region_id);
  PutVarint64(out, seq);
  PutLengthPrefixedSlice(out, row);
  PutVarint32(out, static_cast<uint32_t>(cells.size()));
  for (const Cell& cell : cells) {
    PutLengthPrefixedSlice(out, cell.column);
    PutLengthPrefixedSlice(out, cell.value);
    out->push_back(cell.is_delete ? 1 : 0);
  }
  PutFixed64(out, ts);
}

bool WalEdit::DecodeFrom(Slice* in, WalEdit* edit) {
  uint32_t n;
  if (!GetLengthPrefixedString(in, &edit->table) ||
      !GetVarint64(in, &edit->region_id) || !GetVarint64(in, &edit->seq) ||
      !GetLengthPrefixedString(in, &edit->row) || !GetVarint32(in, &n)) {
    return false;
  }
  edit->cells.resize(n);
  for (uint32_t i = 0; i < n; i++) {
    if (!GetLengthPrefixedString(in, &edit->cells[i].column) ||
        !GetLengthPrefixedString(in, &edit->cells[i].value) || in->empty()) {
      return false;
    }
    edit->cells[i].is_delete = (*in)[0] != 0;
    in->remove_prefix(1);
  }
  return GetFixed64(in, &edit->ts);
}

// ---- RegionServer ----

RegionServer::RegionServer(NodeId id, std::string data_root, Fabric* fabric,
                           const RegionServerOptions& options)
    : id_(id),
      data_root_(std::move(data_root)),
      wal_dir_(data_root_ + "/wal/s" + std::to_string(id)),
      fabric_(fabric),
      options_(options),
      lsm_options_(options.lsm) {
  if (lsm_options_.block_cache == nullptr && options_.block_cache_bytes > 0) {
    lsm_options_.block_cache =
        std::make_shared<LruCache>(options_.block_cache_bytes);
  }
  if (options_.metrics != nullptr) {
    rs_put_counter_ = options_.metrics->GetCounter("rs.put");
    admission_delayed_counter_ =
        options_.metrics->GetCounter("admission.delayed");
    admission_delayed_micros_counter_ =
        options_.metrics->GetCounter("admission.delayed_micros");
    admission_rejected_counter_ =
        options_.metrics->GetCounter("admission.rejected");
    rs_flush_counter_ = options_.metrics->GetCounter("rs.flush");
    flush_stall_hist_ =
        options_.metrics->GetHistogram("rs.flush_stall_micros");
    wal_group_size_hist_ = options_.metrics->GetHistogram("wal.group_size");
    wal_segments_gauge_ = options_.metrics->GetGauge("wal.segments");
    wal_gc_deleted_counter_ = options_.metrics->GetCounter("wal.gc_deleted");
    wal_replay_skipped_counter_ =
        options_.metrics->GetCounter("wal.replay_skipped");
    wal_replayed_counter_ = options_.metrics->GetCounter("wal.replayed");
    checkpoint_writes_counter_ =
        options_.metrics->GetCounter("checkpoint.writes");
    checkpoint_write_failed_counter_ =
        options_.metrics->GetCounter("checkpoint.write_failed");
    checkpoint_corrupt_counter_ =
        options_.metrics->GetCounter("checkpoint.corrupt");
  }
  if (options_.base_row_cache_bytes > 0) {
    base_row_cache_ = std::make_unique<BaseRowCache>(
        options_.base_row_cache_bytes, options_.metrics);
  }
}

RegionServer::~RegionServer() {
  stopped_.store(true);
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
  if (wal_gc_thread_.joinable()) wal_gc_thread_.join();
}

Status RegionServer::Start() {
  // Edit sequences are compared against values persisted by a region's
  // previous owner after a failover, so they must grow across owner
  // generations: seed from the wall clock (a new owner always starts
  // after the old owner's last edit).
  next_edit_seq_.store(TimestampOracle::NowMicros());
  DIFFINDEX_RETURN_NOT_OK(lsm_options_.env->CreateDirIfMissing(wal_dir_));
  {
    MutexLock lock(wal_mu_);
    DIFFINDEX_RETURN_NOT_OK(RollWalLocked());
  }
  fabric_->RegisterNode(
      id_, [this](MsgType type, Slice body, std::string* response) {
        return Handle(type, body, response);
      });
  if (options_.heartbeat_interval_ms > 0) {
    heartbeat_thread_ = std::thread([this] { HeartbeatLoop(); });
  }
  if (options_.wal_gc_interval_ms > 0) {
    wal_gc_thread_ = std::thread([this] { WalGcLoop(); });
  }
  return Status::OK();
}

Status RegionServer::Stop() {
  DIFFINDEX_RETURN_NOT_OK(FlushAll());
  stopped_.store(true);
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
  if (wal_gc_thread_.joinable()) wal_gc_thread_.join();
  fabric_->UnregisterNode(id_);
  MutexLock lock(wal_mu_);
  if (!wal_files_.empty() && wal_files_.back().writer != nullptr) {
    // Graceful stop already flushed every region, so the WAL's contents
    // are all covered by disk stores; a close error cannot lose edits.
    wal_files_.back().writer->Close().IgnoreError();
    wal_files_.back().writer.reset();
  }
  return Status::OK();
}

void RegionServer::Crash() {
  stopped_.store(true);
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
  if (wal_gc_thread_.joinable()) wal_gc_thread_.join();
}

void RegionServer::WalGcLoop() {
  while (!stopped_.load()) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.wal_gc_interval_ms));
    if (stopped_.load()) break;
    MutexLock lock(wal_mu_);
    MaybeGcWalFilesLocked();
  }
}

void RegionServer::UpdateCatalog(CatalogSnapshot snapshot) {
  CHECK_YIELD("rs.catalog.update");
  MutexLock lock(catalog_mu_);
  catalog_ = std::move(snapshot);
}

CatalogSnapshot RegionServer::catalog() const {
  MutexLock lock(catalog_mu_);
  return catalog_;
}

void RegionServer::HeartbeatLoop() {
  while (!stopped_.load()) {
    HeartbeatRequest hb;
    hb.server_id = id_;
    hb.auq_depth = hooks_ != nullptr ? hooks_->QueueDepth() : 0;
    std::string body, response;
    hb.EncodeTo(&body);
    // A failed heartbeat is not an error to handle: missed beats are
    // exactly the signal the master's failure detector consumes.
    fabric_->Call(id_, kMasterNode, MsgType::kHeartbeat, body, &response)
        .IgnoreError();
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.heartbeat_interval_ms));
  }
}

void RegionServer::AdoptAppliedSeq(uint64_t adopted) {
  // The adopted region's persisted applied_seq comes from its previous
  // owner's sequence space. Future edits here must sort after it, or a
  // crash of THIS server would make replay skip them; fast-forward the
  // edit sequence past the checkpoint.
  uint64_t current = next_edit_seq_.load(std::memory_order_relaxed);
  while (current <= adopted &&
         !next_edit_seq_.compare_exchange_weak(current, adopted + 1,
                                               std::memory_order_relaxed)) {
  }
}

Status RegionServer::OpenRegionInternal(const RegionInfoWire& info) {
  DIFFINDEX_FAILPOINT("region.open");
  // Adopted region data (and any WAL replay that follows) did not pass
  // through NoteWrite; drop every cached claim about what is "latest".
  if (base_row_cache_ != nullptr) base_row_cache_->Clear();
  std::unique_ptr<Region> region;
  DIFFINDEX_RETURN_NOT_OK(
      Region::Open(lsm_options_, data_root_, info, &region));
  AdoptAppliedSeq(region->tree()->applied_seq());

  WriterMutexLock lock(regions_mu_);
  const auto key = std::make_pair(info.table, info.region_id);
  regions_[key] = std::shared_ptr<Region>(region.release());
  flushed_seq_[key] = regions_[key]->tree()->applied_seq();
  return Status::OK();
}

Status RegionServer::OpenRegion(const RegionInfoWire& info) {
  if (stopped_.load()) return Status::Unavailable("region server stopped");
  DIFFINDEX_RETURN_NOT_OK(OpenRegionInternal(info));
  // Rebuild region-co-located local indexes from the base data.
  if (hooks_ != nullptr) hooks_->OnRegionOpened(info.table, info.region_id);
  return Status::OK();
}

Status RegionServer::ReplayWalForRegion(
    Region* region, const RegionInfoWire& info,
    const std::vector<std::string>& wal_paths, uint64_t recovered_through,
    std::vector<std::pair<PutRequest, Timestamp>>* replayed) {
  // "Split the log": scan the dead owners' WAL files, pick out this
  // region's edits, replay those past the roll-forward point.
  uint64_t skipped = 0;
  for (const auto& path : wal_paths) {
    DIFFINDEX_FAILPOINT("wal.replay");
    std::unique_ptr<wal::Reader> reader;
    Status s = wal::Reader::Open(lsm_options_.env, path, &reader);
    if (!s.ok()) continue;  // file may be gone (GC'd); fine
    std::string payload;
    while (reader->ReadRecord(&payload)) {
      Slice in(payload);
      WalEdit edit;
      if (!WalEdit::DecodeFrom(&in, &edit)) break;  // corrupt tail
      if (edit.table != info.table || edit.region_id != info.region_id) {
        continue;
      }
      if (edit.seq <= recovered_through) {  // already flushed
        skipped++;
        continue;
      }

      PutRequest put;
      put.table = edit.table;
      put.row = edit.row;
      put.cells = edit.cells;
      put.ts = edit.ts;
      {
        MutexLock wlock(region->write_mu());
        for (const Cell& cell : put.cells) {
          const std::string cell_key = EncodeCellKey(put.row, cell.column);
          if (cell.is_delete) {
            // ANALYZER_WAIVE(log-before-apply): WAL replay — this edit
            // was decoded from the log being replayed, so its covering
            // append happened before the crash; re-appending would
            // duplicate it.
            DIFFINDEX_RETURN_NOT_OK(region->tree()->Delete(cell_key, edit.ts));
          } else {
            // ANALYZER_WAIVE(log-before-apply): WAL replay — same
            // already-durable argument as the delete arm above.
            DIFFINDEX_RETURN_NOT_OK(
                region->tree()->Put(cell_key, cell.value, edit.ts));
          }
        }
      }
      replayed->emplace_back(std::move(put), edit.ts);
    }
  }
  if (wal_replay_skipped_counter_ != nullptr) {
    wal_replay_skipped_counter_->Add(skipped);
  }
  if (wal_replayed_counter_ != nullptr) {
    wal_replayed_counter_->Add(replayed->size());
  }
  DIFFINDEX_LOG_INFO << "server " << id_ << ": recovered region "
                     << info.table << "/r" << info.region_id << ", "
                     << replayed->size() << " edits replayed, " << skipped
                     << " skipped (checkpointed)";
  return Status::OK();
}

Status RegionServer::OpenRegionWithRecovery(
    const RegionInfoWire& info, const std::vector<std::string>& wal_paths) {
  if (stopped_.load()) return Status::Unavailable("region server stopped");
  {
    // Already hosting: a chained-failure recovery can route the same
    // region back to a server that recovered it moments ago. The served
    // state supersedes any replay; opening the LSM dir a second time
    // would race the live tree.
    ReaderMutexLock lock(regions_mu_);
    if (regions_.count({info.table, info.region_id}) > 0) {
      return Status::OK();
    }
  }
  DIFFINDEX_FAILPOINT("region.open");
  if (base_row_cache_ != nullptr) base_row_cache_->Clear();

  // Open, replay, and only then publish: a failure anywhere below leaves
  // this server exactly as it was (the region never served, so there is
  // nothing to un-publish and no acked edit to lose), which is what lets
  // the master retry here or reassign to another survivor.
  std::unique_ptr<Region> region;
  DIFFINDEX_RETURN_NOT_OK(
      Region::Open(lsm_options_, data_root_, info, &region));
  AdoptAppliedSeq(region->tree()->applied_seq());

  // Roll-forward point: the flush checkpoint when one is readable, the
  // LSM manifest's applied_seq otherwise (pre-checkpoint regions). A
  // corrupt checkpoint widens replay to the full log — replay is
  // idempotent under the explicit-timestamp rule, so over-replay costs
  // time, never correctness — and is never trusted to narrow it.
  uint64_t recovered_through = 0;
  if (options_.recovery_use_checkpoints) {
    recovered_through = region->tree()->applied_seq();
    RegionCheckpoint ckpt;
    Status ckpt_status = ReadRegionCheckpoint(
        lsm_options_.env, data_root_, info.table, info.region_id, &ckpt);
    if (ckpt_status.ok()) {
      recovered_through = std::max(recovered_through, ckpt.wal_seq);
    } else if (ckpt_status.IsCorruption()) {
      DIFFINDEX_LOG_WARN << "server " << id_ << ": checkpoint for "
                         << info.table << "/r" << info.region_id
                         << " unreadable (" << ckpt_status.ToString()
                         << "); falling back to full replay";
      if (checkpoint_corrupt_counter_ != nullptr) {
        checkpoint_corrupt_counter_->Add();
      }
      recovered_through = 0;
    }
  }

  std::vector<std::pair<PutRequest, Timestamp>> replayed;
  DIFFINDEX_RETURN_NOT_OK(ReplayWalForRegion(
      region.get(), info, wal_paths, recovered_through, &replayed));

  // Publish: the region starts serving its recovered state.
  {
    WriterMutexLock lock(regions_mu_);
    const auto key = std::make_pair(info.table, info.region_id);
    regions_[key] = std::shared_ptr<Region>(region.release());
    flushed_seq_[key] = regions_[key]->tree()->applied_seq();
  }

  // Requirement (2) of the AUQ recovery protocol: every replayed base
  // put re-enters the AUQ, "regardless of whether or not it has been
  // delivered to index tables before the failure". Idempotent by the
  // same-timestamp rule. After publish, so the tasks' base read-backs
  // can route to this region.
  if (hooks_ != nullptr) {
    for (auto& [put, ts] : replayed) {
      hooks_->OnWalReplay(put, ts);
    }
    // Replay done: local indexes can now be rebuilt over the full state.
    hooks_->OnRegionOpened(info.table, info.region_id);
  }
  // The master flushes the region (phase 2 of recovery) once every region
  // of the dead server has a reachable new owner — the flush drains the
  // re-enqueued AUQ entries first and those need the other regions up.
  return Status::OK();
}

Status RegionServer::SplitRegion(const std::string& table,
                                 uint64_t region_id,
                                 const std::string& split_key,
                                 const RegionInfoWire& left,
                                 const RegionInfoWire& right) {
  auto parent = FindRegionById(table, region_id);
  if (parent == nullptr) return Status::WrongRegion(table);
  if (!parent->ContainsRow(split_key)) {
    return Status::InvalidArgument("split key outside the region range");
  }
  if (split_key == parent->info().start_row) {
    return Status::InvalidArgument("split key equals the region start");
  }

  // Make the parent's state durable first (drains the AUQ so no pending
  // index work references the parent's memtable).
  DIFFINDEX_RETURN_NOT_OK(FlushRegionInternal(parent));

  // Block writes to the parent for the copy + swap.
  WriterMutexLock gate(parent->flush_gate());

  std::unique_ptr<Region> left_region, right_region;
  DIFFINDEX_RETURN_NOT_OK(
      Region::Open(lsm_options_, data_root_, left, &left_region));
  DIFFINDEX_RETURN_NOT_OK(
      Region::Open(lsm_options_, data_root_, right, &right_region));

  // Copy all versions into the daughters. Cell keys order by row first,
  // so [.., split'\0') and [split'\0', ..) partition the cell keyspace
  // exactly at the row boundary.
  const std::string split_cell = RowScanStart(split_key);
  DIFFINDEX_RETURN_NOT_OK(
      parent->tree()->ExportRecords("", split_cell, left_region->tree()));
  DIFFINDEX_RETURN_NOT_OK(
      parent->tree()->ExportRecords(split_cell, "", right_region->tree()));
  DIFFINDEX_RETURN_NOT_OK(left_region->tree()->Flush());
  DIFFINDEX_RETURN_NOT_OK(right_region->tree()->Flush());

  // Atomic metadata swap: the parent disappears, the daughters take over.
  {
    WriterMutexLock lock(regions_mu_);
    regions_.erase({table, region_id});
    flushed_seq_.erase({table, region_id});
    regions_[{table, left.region_id}] =
        std::shared_ptr<Region>(left_region.release());
    regions_[{table, right.region_id}] =
        std::shared_ptr<Region>(right_region.release());
    flushed_seq_[{table, left.region_id}] = 0;
    flushed_seq_[{table, right.region_id}] = 0;
  }
  // The daughters' data was written by ExportRecords, not NoteWrite.
  if (base_row_cache_ != nullptr) base_row_cache_->Clear();

  // Rebuild any local indexes over the daughters.
  if (hooks_ != nullptr) {
    hooks_->OnRegionOpened(table, left.region_id);
    hooks_->OnRegionOpened(table, right.region_id);
  }

  // Retire the parent's storage (its data now lives in the daughters).
  // Best-effort: a leftover directory wastes disk but affects no reads.
  lsm_options_.env
      ->RemoveDirRecursively(Region::DataDir(data_root_, table, region_id))
      .IgnoreError();
  DIFFINDEX_LOG_INFO << "server " << id_ << ": split " << table << "/r"
                     << region_id << " at '" << split_key << "' into r"
                     << left.region_id << " + r" << right.region_id;
  return Status::OK();
}

Status RegionServer::CloseRegionForMove(const std::string& table,
                                        uint64_t region_id) {
  if (stopped_.load()) return Status::Unavailable("region server stopped");
  auto region = FindRegionById(table, region_id);
  if (region == nullptr) return Status::WrongRegion(table);

  // Fence first (under the exclusive gate so no put is mid-pipeline),
  // then flush: after this no edit can land in this replica.
  {
    WriterMutexLock gate(region->flush_gate());
    region->set_closed();
  }
  DIFFINDEX_RETURN_NOT_OK(FlushRegionInternal(region));
  {
    WriterMutexLock lock(regions_mu_);
    regions_.erase({table, region_id});
    flushed_seq_.erase({table, region_id});
  }
  // The region's rows may come back (move away and return) after another
  // owner mutated them; cached `latest` claims would then be stale.
  if (base_row_cache_ != nullptr) base_row_cache_->Clear();
  DIFFINDEX_LOG_INFO << "server " << id_ << ": closed " << table << "/r"
                     << region_id << " for move";
  return Status::OK();
}

Status RegionServer::CloseRegion(const std::string& table,
                                 uint64_t region_id) {
  CHECK_YIELD("rs.region.close");
  {
    WriterMutexLock lock(regions_mu_);
    regions_.erase({table, region_id});
    flushed_seq_.erase({table, region_id});
  }
  if (base_row_cache_ != nullptr) base_row_cache_->Clear();
  return Status::OK();
}

std::vector<RegionInfoWire> RegionServer::HostedRegions() const {
  ReaderMutexLock lock(regions_mu_);
  std::vector<RegionInfoWire> result;
  result.reserve(regions_.size());
  for (const auto& [key, region] : regions_) {
    result.push_back(region->info());
  }
  return result;
}

std::shared_ptr<Region> RegionServer::FindRegion(const std::string& table,
                                                 const Slice& row) const {
  ReaderMutexLock lock(regions_mu_);
  for (const auto& [key, region] : regions_) {
    if (key.first == table && region->ContainsRow(row)) return region;
  }
  return nullptr;
}

std::shared_ptr<Region> RegionServer::FindRegionById(
    const std::string& table, uint64_t region_id) const {
  ReaderMutexLock lock(regions_mu_);
  auto it = regions_.find({table, region_id});
  return it == regions_.end() ? nullptr : it->second;
}

Status RegionServer::Handle(MsgType type, Slice body, std::string* response) {
  switch (type) {
    case MsgType::kPut:
      return HandlePut(body, response);
    case MsgType::kGetCell:
      return HandleGetCell(body, response);
    case MsgType::kGetRow:
      return HandleGetRow(body, response);
    case MsgType::kScanRows:
      return HandleScanRows(body, response);
    case MsgType::kRawScan:
      return HandleRawScan(body, response);
    case MsgType::kRawDelete:
      return HandleRawDelete(body, response);
    case MsgType::kFlushRegion:
    case MsgType::kCompactRegion:
      return HandleRegionAdmin(type, body);
    case MsgType::kLocalIndexScan:
      return HandleLocalIndexScan(body, response);
    case MsgType::kMultiPut:
      return HandleMultiPut(body, response);
    case MsgType::kMultiGet:
      return HandleMultiGet(body, response);
    case MsgType::kIndexScan:
      return HandleIndexScan(body, response);
    default:
      return Status::NotSupported("region server: unexpected message type");
  }
}

Status RegionServer::LogAndApply(const std::shared_ptr<Region>& region,
                                 const PutRequest& put,
                                 Timestamp requested_ts,
                                 Timestamp* assigned_ts, PutResponse* resp) {
  MutexLock wlock(region->write_mu());
  // Under write_mu, so same-region ts order == apply order (see the
  // declaration comment — the sync observers' retraction reads rely on
  // this).
  const Timestamp ts = requested_ts != 0 ? requested_ts : oracle_.Next();
  *assigned_ts = ts;

  // Session consistency support: report each cell's previous value so the
  // client library can generate its private index entries/delete markers
  // (Section 5.2). Read here, under the same serialization as the ts
  // draw, so "previous" is exact — no concurrent same-row put can sit
  // between this snapshot and ts.
  if (resp != nullptr && put.return_old_values) {
    for (const Cell& cell : put.cells) {
      OldCellValue old;
      old.column = cell.column;
      std::string value;
      Timestamp old_ts = 0;
      Status s = region->tree()->Get(EncodeCellKey(put.row, cell.column),
                                     ts - kDelta, &value, &old_ts);
      if (s.ok()) {
        old.found = true;
        old.value = std::move(value);
        old.ts = old_ts;
      }
      resp->old_values.push_back(std::move(old));
    }
  }

  WalEdit edit;
  edit.table = put.table;
  edit.region_id = region->info().region_id;
  edit.row = put.row;
  edit.cells = put.cells;
  edit.ts = ts;
  edit.seq = next_edit_seq_.fetch_add(1, std::memory_order_relaxed);

  std::string payload;
  edit.EncodeTo(&payload);
  uint64_t sync_ticket = 0;
  {
    MutexLock wal_lock(wal_mu_);
    WalFile& tail = wal_files_.back();
    // ANALYZER_WAIVE(blocking-under-lock): WAL appends serialize under
    // wal_mu by design — the Writer is not thread-safe and the ladder
    // places wal_mu above write_mu for exactly this append-in-order path.
    Status wal_status = tail.writer->AddRecord(payload);
    if (!wal_status.ok()) {
      // A failed append may have torn the tail file: anything written
      // after the tear would be unreadable at replay even though it was
      // acknowledged. Roll to a fresh file so the torn file's complete
      // prefix stays recoverable and later edits land past the tear.
      DIFFINDEX_LOG_WARN << "wal append failed (" << wal_status.ToString()
                         << "); rolling " << tail.path;
      Status roll_status = RollWalLocked();
      if (!roll_status.ok()) {
        DIFFINDEX_LOG_WARN << "wal roll after torn append failed: "
                           << roll_status.ToString();
      }
      return wal_status;
    }
    auto& max_seq =
        tail.region_max_seq[{put.table, region->info().region_id}];
    max_seq = std::max(max_seq, edit.seq);
    // Ticket = this append's ordinal; "synced through T" covers it.
    sync_ticket = wal_appends_.fetch_add(1, std::memory_order_relaxed) + 1;
    // Append-path segment roll: without it a write-heavy region that
    // rarely flushes would grow one unbounded segment that GC can never
    // reclaim piecewise.
    MaybeRollWalLocked();
  }
  if (options_.wal_sync == wal::SyncMode::kGroupCommit) {
    // Appended and ticketed but not yet durable: concurrent appends that
    // interleave here join this ticket's covering sync.
    CHECK_YIELD_RES("wal.ticket", &wal_sync_mu_);
    // One shared fsync covers every append up to the leader's window; the
    // put is not durable (and must not be acked) until it returns.
    DIFFINDEX_RETURN_NOT_OK(GroupCommitSync(sync_ticket));
  }
  if (lsm_options_.latency != nullptr) lsm_options_.latency->WalAppend();

  for (const Cell& cell : put.cells) {
    const std::string cell_key = EncodeCellKey(put.row, cell.column);
    if (cell.is_delete) {
      DIFFINDEX_RETURN_NOT_OK(region->tree()->Delete(cell_key, ts));
    } else {
      DIFFINDEX_RETURN_NOT_OK(region->tree()->Put(cell_key, cell.value, ts));
    }
    if (base_row_cache_ != nullptr) {
      // Write-through, still under write_mu and before the put is acked:
      // a reader that starts after the ack can never see an older version
      // from the cache. The verify callback reads the cell's newest
      // version straight back (memtable-resident — we just wrote it).
      base_row_cache_->NoteWrite(
          put.table, put.row, cell, ts, [&](Timestamp* newest_ts) {
            std::string newest_value;
            return region->tree()
                ->Get(cell_key, kMaxTimestamp, &newest_value, newest_ts)
                .ok();
          });
    }
  }
  region->tree()->set_applied_seq(edit.seq);
  return Status::OK();
}

Status RegionServer::GroupCommitSync(uint64_t ticket) {
  {
    MutexLock lock(wal_sync_mu_);
    // ANALYZER_WAIVE(blocking-under-lock): group-commit follower wait —
    // the elected leader always clears wal_sync_in_progress_ after its
    // fsync, so the wait is bounded by one sync and cannot self-deadlock.
    wal_sync_cv_.Wait(wal_sync_mu_, [&]() REQUIRES(wal_sync_mu_) {
      return synced_ticket_ >= ticket || !wal_sync_in_progress_;
    });
    if (synced_ticket_ >= ticket) return Status::OK();  // a leader covered us
    wal_sync_in_progress_ = true;  // become the leader
  }
  // Leader elected, sync not started: appends landing here are covered
  // by this sync's target read under wal_mu_ below.
  CHECK_YIELD_RES("wal.group_commit.lead", &wal_sync_mu_);
  // Optional window: let more concurrent appends join this sync. Latecomers
  // also batch naturally — they block above until this sync finishes, and
  // whoever leads next covers all of them at once.
  if (options_.wal_group_window_micros > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.wal_group_window_micros));
  }
  uint64_t target = 0;
  Status s;
  {
    // Sync under wal_mu_: the Writer is not thread-safe against concurrent
    // AddRecord. `target` is read under the same lock, so every append it
    // counts is fully in the file the sync flushes.
    MutexLock wal_lock(wal_mu_);
    target = wal_appends_.load(std::memory_order_relaxed);
    if (!wal_files_.empty() && wal_files_.back().writer != nullptr) {
      // ANALYZER_WAIVE(blocking-under-lock): the group-commit leader's
      // fsync under wal_mu is the protocol's point — `target` is read
      // under the same lock so every counted append is in the sync.
      s = wal_files_.back().writer->Sync();
    }
  }
  MutexLock lock(wal_sync_mu_);
  wal_sync_in_progress_ = false;
  if (s.ok() && target > synced_ticket_) {
    if (wal_group_size_hist_ != nullptr) {
      wal_group_size_hist_->Add(target - synced_ticket_);
    }
    synced_ticket_ = target;
  }
  // Wake everyone: covered followers return, uncovered ones (after a
  // failed sync) re-elect a leader and try again with their own error.
  wal_sync_cv_.SignalAll();
  return s;
}

Status RegionServer::CachedGet(const std::shared_ptr<Region>& region,
                               const std::string& table, const Slice& row,
                               const Slice& column, Timestamp read_ts,
                               std::string* value, Timestamp* version_ts) {
  if (base_row_cache_ != nullptr) {
    switch (base_row_cache_->Lookup(table, row, column, read_ts, value,
                                    version_ts)) {
      case BaseRowCache::Result::kHit:
        return Status::OK();
      case BaseRowCache::Result::kHitDeleted:
        return Status::NotFound(table + " (cached tombstone)");
      case BaseRowCache::Result::kMiss:
        break;
    }
  }
  return region->tree()->Get(EncodeCellKey(row, column), read_ts, value,
                             version_ts);
}

Status RegionServer::HandlePut(Slice body, std::string* response) {
  PutRequest put;
  if (!PutRequest::DecodeFrom(&body, &put)) {
    return Status::InvalidArgument("malformed put");
  }
  PutResponse resp;
  DIFFINDEX_RETURN_NOT_OK(ExecutePut(put, &resp));
  resp.EncodeTo(response);
  return Status::OK();
}

Status RegionServer::HandleMultiPut(Slice body, std::string* response) {
  MultiPutRequest req;
  if (!MultiPutRequest::DecodeFrom(&body, &req)) {
    return Status::InvalidArgument("malformed multi-put");
  }
  MultiPutResponse resp;
  resp.assigned_ts.reserve(req.puts.size());
  for (const PutRequest& put : req.puts) {
    // Per-row atomicity, as in HBase multi-puts: the batch is a transport
    // optimization, not a transaction. The first failure aborts the rest
    // (the client retries the batch; re-applied puts are idempotent only
    // with explicit timestamps, so report the error).
    PutResponse one;
    DIFFINDEX_RETURN_NOT_OK(ExecutePut(put, &one));
    resp.assigned_ts.push_back(one.assigned_ts);
  }
  resp.EncodeTo(response);
  return Status::OK();
}

bool RegionServer::AdmissionStalled(
    const std::shared_ptr<Region>& region) const {
  const uint64_t started = region->flush_started_micros();
  if (started != 0) {
    const uint64_t now = TimestampOracle::NowMicros();
    if (now > started && now - started > options_.admission_stall_micros) {
      return true;
    }
  }
  if (options_.admission_l0_slack >= 0 &&
      region->tree()->NumDiskStores() >=
          lsm_options_.compaction_trigger + options_.admission_l0_slack) {
    return true;
  }
  return false;
}

Status RegionServer::AdmitPut(const std::shared_ptr<Region>& region) {
  if (options_.admission_stall_micros == 0) return Status::OK();
  if (!AdmissionStalled(region)) return Status::OK();
  // Bounded delay, then shed: wait in 1ms slices for the stall to clear.
  // The delay counter advances by the nominal slice width (not measured
  // wall clock) so tests can assert exact deltas.
  constexpr uint64_t kSliceMicros = 1000;
  uint64_t waited = 0;
  bool cleared = false;
  while (waited < options_.admission_max_delay_micros) {
    std::this_thread::sleep_for(std::chrono::microseconds(kSliceMicros));
    waited += kSliceMicros;
    if (!AdmissionStalled(region)) {
      cleared = true;
      break;
    }
  }
  if (admission_delayed_counter_ != nullptr) {
    admission_delayed_counter_->Add();
  }
  if (admission_delayed_micros_counter_ != nullptr) {
    admission_delayed_micros_counter_->Add(waited);
  }
  if (cleared) return Status::OK();
  if (admission_rejected_counter_ != nullptr) {
    admission_rejected_counter_->Add();
  }
  return Status::ResourceExhausted(
      "region " + region->info().table + "/r" +
      std::to_string(region->info().region_id) + " stalled past " +
      std::to_string(options_.admission_max_delay_micros) + "us");
}

Status RegionServer::ExecutePut(const PutRequest& put, PutResponse* resp) {
  obs::SpanTimer span(options_.metrics, options_.traces, "rs.put");
  if (rs_put_counter_ != nullptr) rs_put_counter_->Add();
  if (!ValidName(put.row)) {
    return Status::InvalidArgument("row contains the cell separator");
  }
  for (const Cell& cell : put.cells) {
    if (!ValidName(cell.column)) {
      return Status::InvalidArgument("column contains the cell separator");
    }
  }
  auto region = FindRegion(put.table, put.row);
  if (region == nullptr) {
    return Status::WrongRegion(put.table + "/" + put.row);
  }

  // Admission control before the gate: a put that would only pile onto a
  // long-stalled flush gate (or onto runaway L0 debt) is delayed and then
  // bounced instead, keeping the stall out of the gate's queue. No lock
  // is held yet, so the wait blocks nothing else.
  DIFFINDEX_RETURN_NOT_OK(AdmitPut(region));

  // Decision point before the put enters its pipeline (gate, WAL,
  // memtable, index hooks): flushes and concurrent puts order here.
  CHECK_YIELD("rs.put.begin");
  const auto stall_start = std::chrono::steady_clock::now();
  ReaderMutexLock gate(region->flush_gate());
  const auto stall_end = std::chrono::steady_clock::now();
  const auto stalled = std::chrono::duration_cast<std::chrono::microseconds>(
                           stall_end - stall_start)
                           .count();
  if (stalled > 0) {
    flush_stall_micros_.fetch_add(static_cast<uint64_t>(stalled),
                                  std::memory_order_relaxed);
    if (flush_stall_hist_ != nullptr) {
      flush_stall_hist_->Add(static_cast<uint64_t>(stalled));
    }
  }

  if (region->closed()) {
    // Mid-move fence: the final flush already ran; no edit may land here.
    return Status::WrongRegion(put.table + " (region moving)");
  }

  Timestamp requested_ts = put.ts;
#ifdef DIFFINDEX_CHECK
  // Mutation hook (tests/check/mutation_regression_test.cc): the pre-fix
  // timestamp assignment, drawn before the region's write-serialized
  // section. Two same-row puts can then apply in the opposite order of
  // their timestamps, and a sync observer's retraction read at the later
  // ts misses the earlier, not-yet-applied version — a phantom entry the
  // model checker found and the fixed path (ts drawn inside LogAndApply's
  // write_mu section) prevents.
  if (requested_ts == 0 &&
      check::test_hooks::buggy_ts_outside_write_mu.load(
          std::memory_order_relaxed)) {
    requested_ts = oracle_.Next();
  }
#endif
  Timestamp ts = 0;
  DIFFINDEX_RETURN_NOT_OK(LogAndApply(region, put, requested_ts, &ts, resp));
  resp->assigned_ts = ts;

  // Diff-Index coprocessors: sync schemes complete their index operations
  // here (inside the put latency, as the paper measures); async schemes
  // enqueue into the AUQ. Still under the shared flush gate so the
  // drain-before-flush invariant holds.
  Status index_status = Status::OK();
  if (hooks_ != nullptr) {
    // ANALYZER_WAIVE(blocking-under-lock): sync-scheme index RPC inside
    // the put latency (paper §4.1) under the shared flush gate; the index
    // region's server never re-enters this base region's gate.
    index_status = hooks_->PostApply(put, ts);
  }

  gate.Release();

  if (!index_status.ok()) return index_status;

  if (region->tree()->NeedsFlush()) {
    DIFFINDEX_RETURN_NOT_OK(FlushRegionInternal(region));
  }
  return Status::OK();
}

Status RegionServer::HandleGetCell(Slice body, std::string* response) {
  GetCellRequest req;
  if (!GetCellRequest::DecodeFrom(&body, &req)) {
    return Status::InvalidArgument("malformed get");
  }
  auto region = FindRegion(req.table, req.row);
  if (region == nullptr) return Status::WrongRegion(req.table);

  GetCellResponse resp;
  std::string value;
  Timestamp ts = 0;
  Status s = CachedGet(region, req.table, req.row, req.column, req.read_ts,
                       &value, &ts);
  if (s.ok()) {
    resp.found = true;
    resp.value = std::move(value);
    resp.ts = ts;
  } else if (!s.IsNotFound()) {
    return s;
  }
  resp.EncodeTo(response);
  return Status::OK();
}

Status RegionServer::HandleGetRow(Slice body, std::string* response) {
  GetRowRequest req;
  if (!GetRowRequest::DecodeFrom(&body, &req)) {
    return Status::InvalidArgument("malformed get-row");
  }
  auto region = FindRegion(req.table, req.row);
  if (region == nullptr) return Status::WrongRegion(req.table);

  std::vector<LsmTree::ScanEntry> entries;
  DIFFINDEX_RETURN_NOT_OK(region->tree()->Scan(
      RowScanStart(req.row), RowScanEnd(req.row), req.read_ts, 0, &entries));
  GetRowResponse resp;
  resp.found = !entries.empty();
  for (const auto& entry : entries) {
    std::string row, column;
    if (!DecodeCellKey(entry.key, &row, &column)) continue;
    resp.cells.push_back(RowCell{column, entry.value, entry.ts});
  }
  resp.EncodeTo(response);
  return Status::OK();
}

Status RegionServer::HandleScanRows(Slice body, std::string* response) {
  ScanRowsRequest req;
  if (!ScanRowsRequest::DecodeFrom(&body, &req)) {
    return Status::InvalidArgument("malformed scan");
  }
  // Scans address a region by row range: the client splits a table scan
  // by region boundaries, so start_row falls inside exactly one region.
  auto region = FindRegion(req.table, req.start_row);
  if (region == nullptr) return Status::WrongRegion(req.table);

  // Clamp to the region's key range.
  std::string start = RowScanStart(req.start_row);
  std::string end;
  if (!req.end_row.empty() &&
      (region->info().end_row.empty() ||
       req.end_row < region->info().end_row)) {
    end = RowScanStart(req.end_row);
  } else if (!region->info().end_row.empty()) {
    end = RowScanStart(region->info().end_row);
  }

  std::vector<LsmTree::ScanEntry> entries;
  // No cell-level limit: rows have multiple cells; over-fetch then trim.
  DIFFINDEX_RETURN_NOT_OK(
      region->tree()->Scan(start, end, req.read_ts, 0, &entries));

  ScanRowsResponse resp;
  GroupIntoRows(entries, &resp.rows);
  if (req.limit_rows != 0 && resp.rows.size() > req.limit_rows) {
    resp.rows.resize(req.limit_rows);
  }
  resp.EncodeTo(response);
  return Status::OK();
}

Status RegionServer::HandleRawScan(Slice body, std::string* response) {
  RawScanRequest req;
  if (!RawScanRequest::DecodeFrom(&body, &req)) {
    return Status::InvalidArgument("malformed raw scan");
  }
  // Raw keys are cell keys; the row portion routes.
  std::string row, column;
  if (!DecodeCellKey(req.start_key, &row, &column)) row = req.start_key;
  auto region = FindRegion(req.table, row);
  if (region == nullptr) return Status::WrongRegion(req.table);

  std::string end = req.end_key;
  if (!region->info().end_row.empty()) {
    const std::string region_end = RowScanStart(region->info().end_row);
    if (end.empty() || region_end < end) end = region_end;
  }
  std::vector<LsmTree::ScanEntry> entries;
  DIFFINDEX_RETURN_NOT_OK(
      region->tree()->Scan(req.start_key, end, req.read_ts, req.limit,
                           &entries));
  RawScanResponse resp;
  for (auto& entry : entries) {
    resp.entries.push_back(
        RawEntry{std::move(entry.key), std::move(entry.value), entry.ts});
  }
  resp.EncodeTo(response);
  return Status::OK();
}

Status RegionServer::HandleRawDelete(Slice body, std::string* response) {
  RawDeleteRequest req;
  if (!RawDeleteRequest::DecodeFrom(&body, &req)) {
    return Status::InvalidArgument("malformed raw delete");
  }
  std::string row, column;
  if (!DecodeCellKey(req.key, &row, &column)) row = req.key;
  auto region = FindRegion(req.table, row);
  if (region == nullptr) return Status::WrongRegion(req.table);

  PutRequest put;
  put.table = req.table;
  put.row = row;
  put.cells.push_back(Cell{column, "", /*is_delete=*/true});
  put.ts = req.ts;
  ReaderMutexLock gate(region->flush_gate());
  Timestamp applied_ts = 0;
  DIFFINDEX_RETURN_NOT_OK(
      LogAndApply(region, put, req.ts, &applied_ts, nullptr));
  gate.Release();
  response->clear();
  return Status::OK();
}

Status RegionServer::HandleRegionAdmin(MsgType type, Slice body) {
  RegionAdminRequest req;
  if (!RegionAdminRequest::DecodeFrom(&body, &req)) {
    return Status::InvalidArgument("malformed region admin request");
  }
  auto region = FindRegionById(req.table, req.region_id);
  if (region == nullptr) return Status::WrongRegion(req.table);
  if (type == MsgType::kFlushRegion) return FlushRegionInternal(region);
  return region->tree()->CompactAll();
}

// Local index entries live in the region's side tree keyed as
// index_name '\0' index_row (index rows contain no 0x00 by construction,
// so the namespace split is unambiguous).
Status RegionServer::ApplyLocalIndex(const std::string& table,
                                     const Slice& base_row,
                                     const std::string& index_name,
                                     const std::string& index_row,
                                     Timestamp ts, bool is_delete) {
  auto region = FindRegion(table, base_row);
  if (region == nullptr) return Status::WrongRegion(table);
  MutexLock wlock(region->write_mu());
  DIFFINDEX_RETURN_NOT_OK(region->EnsureLocalIndexTree(lsm_options_));
  const std::string key = index_name + '\0' + index_row;
  if (is_delete) {
    // ANALYZER_WAIVE(log-before-apply): section 5 — local-index edits
    // are asynchronously derived and intentionally not WAL-logged;
    // recovery re-enqueues them from the base table's WAL, and the
    // AUQ dead-letter path covers the escape.
    return region->local_index_tree()->Delete(key, ts);
  }
  // ANALYZER_WAIVE(log-before-apply): same section 5 derived-write
  // argument as the delete arm above.
  return region->local_index_tree()->Put(key, "", ts);
}

Status RegionServer::ScanLocalIndex(const std::string& table,
                                    uint64_t region_id,
                                    const std::string& index_name,
                                    const std::string& start_key,
                                    const std::string& end_key,
                                    Timestamp read_ts, uint32_t limit,
                                    std::vector<RawEntry>* entries) {
  entries->clear();
  auto region = FindRegionById(table, region_id);
  if (region == nullptr) return Status::WrongRegion(table);
  if (region->local_index_tree() == nullptr) return Status::OK();  // empty

  const std::string prefix = index_name + '\0';
  std::string end = prefix;
  if (end_key.empty()) {
    end = index_name + '\x01';  // whole namespace of this index
  } else {
    end += end_key;
  }
  std::vector<LsmTree::ScanEntry> raw;
  DIFFINDEX_RETURN_NOT_OK(region->local_index_tree()->Scan(
      prefix + start_key, end, read_ts, limit, &raw));
  entries->reserve(raw.size());
  for (auto& entry : raw) {
    RawEntry out;
    out.key = entry.key.substr(prefix.size());  // strip the namespace
    out.value = std::move(entry.value);
    out.ts = entry.ts;
    entries->push_back(std::move(out));
  }
  return Status::OK();
}

Status RegionServer::ScanRegionRows(const std::string& table,
                                    uint64_t region_id,
                                    std::vector<ScannedRow>* rows) {
  rows->clear();
  auto region = FindRegionById(table, region_id);
  if (region == nullptr) return Status::WrongRegion(table);
  std::vector<LsmTree::ScanEntry> entries;
  DIFFINDEX_RETURN_NOT_OK(
      region->tree()->Scan("", "", kMaxTimestamp, 0, &entries));
  GroupIntoRows(entries, rows);
  return Status::OK();
}

Status RegionServer::HandleLocalIndexScan(Slice body,
                                          std::string* response) {
  LocalIndexScanRequest req;
  if (!LocalIndexScanRequest::DecodeFrom(&body, &req)) {
    return Status::InvalidArgument("malformed local index scan");
  }
  RawScanResponse resp;
  DIFFINDEX_RETURN_NOT_OK(ScanLocalIndex(req.table, req.region_id,
                                         req.index_name, req.start_key,
                                         req.end_key, req.read_ts, req.limit,
                                         &resp.entries));
  resp.EncodeTo(response);
  return Status::OK();
}

Status RegionServer::HandleMultiGet(Slice body, std::string* response) {
  MultiGetRequest req;
  if (!MultiGetRequest::DecodeFrom(&body, &req)) {
    return Status::InvalidArgument("malformed multi-get");
  }
  MultiGetResponse resp;
  resp.entries.resize(req.keys.size());
  for (size_t i = 0; i < req.keys.size(); i++) {
    const MultiGetKey& key = req.keys[i];
    // Every key must route here; a stale client layout fails the whole
    // batch so the client refreshes and regroups (reads are idempotent).
    auto region = FindRegion(req.table, key.row);
    if (region == nullptr) {
      return Status::WrongRegion(req.table + "/" + key.row);
    }
    std::string value;
    Timestamp ts = 0;
    Status s = CachedGet(region, req.table, key.row, key.column, req.read_ts,
                         &value, &ts);
    if (s.ok()) {
      resp.entries[i].found = true;
      resp.entries[i].value = std::move(value);
      resp.entries[i].ts = ts;
    } else if (!s.IsNotFound()) {
      return s;
    }
  }
  resp.EncodeTo(response);
  return Status::OK();
}

Status RegionServer::HandleIndexScan(Slice body, std::string* response) {
  IndexScanRequest req;
  if (!IndexScanRequest::DecodeFrom(&body, &req)) {
    return Status::InvalidArgument("malformed index scan");
  }
  // Addressed by region id: if the region moved away the leg fails fast
  // with WrongRegion instead of silently scanning a different key range.
  auto region = FindRegionById(req.table, req.region_id);
  if (region == nullptr) return Status::WrongRegion(req.table);

  // Clamp [start_key, end_key) — index-row bounds — to the region's
  // range. start_key may be a resume cursor (`row + '\0'`), which still
  // orders correctly because index rows contain no 0x00.
  std::string start = req.start_key;
  if (start < region->info().start_row) start = region->info().start_row;
  std::string end = req.end_key;
  if (!region->info().end_row.empty() &&
      (end.empty() || region->info().end_row < end)) {
    end = region->info().end_row;
  }

  // Index tables are key-only (one empty-named cell per entry), so cell
  // entries map 1:1 to index rows; scan one past the limit to learn
  // whether the leg was truncated.
  const uint32_t scan_limit = req.limit == 0 ? 0 : req.limit + 1;
  std::vector<LsmTree::ScanEntry> entries;
  DIFFINDEX_RETURN_NOT_OK(region->tree()->Scan(
      RowScanStart(start), end.empty() ? "" : RowScanStart(end), req.read_ts,
      scan_limit, &entries));

  IndexScanResponse resp;
  for (auto& entry : entries) {
    std::string row, column;
    if (!DecodeCellKey(entry.key, &row, &column)) continue;
    resp.entries.push_back(
        RawEntry{std::move(row), std::move(entry.value), entry.ts});
  }
  if (req.limit != 0 && resp.entries.size() > req.limit) {
    resp.entries.resize(req.limit);
    resp.more = true;
    resp.resume_key = resp.entries.back().key + '\0';
  }
  resp.EncodeTo(response);
  return Status::OK();
}

Status RegionServer::LocalGetCell(const std::string& table, const Slice& row,
                                  const Slice& column, Timestamp read_ts,
                                  std::string* value, Timestamp* version_ts) {
  auto region = FindRegion(table, row);
  if (region == nullptr) return Status::WrongRegion(table);
  return CachedGet(region, table, row, column, read_ts, value, version_ts);
}

Status RegionServer::FlushRegion(const std::string& table,
                                 uint64_t region_id) {
  // Control-plane fence: a crashed server must not touch the shared
  // region directory (its region may already be open on a survivor).
  if (stopped_.load()) return Status::Unavailable("region server stopped");
  auto region = FindRegionById(table, region_id);
  if (region == nullptr) return Status::WrongRegion(table);
  return FlushRegionInternal(region);
}

Status RegionServer::FlushRegionInternal(
    const std::shared_ptr<Region>& region) {
  // Decision point before the flush claims the exclusive gate: puts
  // racing the flush order here.
  CHECK_YIELD("rs.flush.begin");
  // Admission signal: the stall clock starts when the flush begins
  // queueing on the gate (puts start stalling behind the pending writer,
  // not only once it is held) and stops on every exit path below.
  region->set_flush_started_micros(TimestampOracle::NowMicros());
  struct FlushMarkerReset {
    Region* region;
    ~FlushMarkerReset() { region->set_flush_started_micros(0); }
  } marker_reset{region.get()};
  // Exclusive gate: no put is mid-pipeline; every applied put's AUQ entry
  // is enqueued. PreFlush pauses intake and waits for the APS to drain —
  // this is "1. pause & drain / 2. flush / 3. roll forward" of Figure 5.
  WriterMutexLock gate(region->flush_gate());
  obs::SpanTimer flush_span(options_.metrics, options_.traces, "rs.flush");
  {
    // Drain-before-flush cost (Figure 5 step 1): how long this flush
    // waited for the AUQ to empty while holding the gate exclusively.
    obs::SpanTimer drain_span(options_.metrics, options_.traces,
                              "rs.flush_drain");
    // ANALYZER_WAIVE(blocking-under-lock): Figure 5 drain-before-flush —
    // the AUQ drain must finish while the gate is held exclusively or a
    // racing put could enqueue an update the flush then strands.
    if (hooks_ != nullptr) hooks_->PreFlush(region->info().table);
  }
  // §5.3 PR(Flushed) = ∅, checked on every explored schedule: after the
  // drain barrier the AUQ must be empty (intake is paused until
  // PostFlush, so it stays empty through the memtable swap).
  if (hooks_ != nullptr) {
    CHECK_POINT_VAL("rs.flush.drained_depth", hooks_->QueueDepth());
  }
  // ANALYZER_WAIVE(blocking-under-lock): the SSTable build + Sync runs
  // under the flush gate by design — flush must be exclusive of writers
  // (Figure 5), and the PR 9 admission controller is what bounds the
  // resulting stall, not lock scope.
  Status s = region->tree()->Flush();
  if (s.ok() && region->local_index_tree() != nullptr) {
    // Local-index writers serialize on write_mu, NOT the flush gate (the
    // post-open rebuild in OnRegionOpened writes without the gate), so the
    // gate alone does not make this flush safe: hold write_mu across it to
    // honor LsmTree's Put/Flush external-serialization contract.
    MutexLock wlock(region->write_mu());
    // ANALYZER_WAIVE(blocking-under-lock): same flush-exclusivity story
    // as the base-tree flush above, with write_mu added because local-
    // index writers serialize on it rather than the gate.
    s = region->local_index_tree()->Flush();
  }
  if (hooks_ != nullptr) hooks_->PostFlush(region->info().table);
  DIFFINDEX_RETURN_NOT_OK(s);
  flush_count_.fetch_add(1, std::memory_order_relaxed);
  if (rs_flush_counter_ != nullptr) rs_flush_counter_->Add();

  const auto key =
      std::make_pair(region->info().table, region->info().region_id);
  // applied_seq() reads the durable (manifest-persisted) sequence, which
  // the flush just advanced; the gate is held exclusively, so no put can
  // move it concurrently.
  const uint64_t covered_seq = region->tree()->applied_seq();
  {
    WriterMutexLock lock(regions_mu_);
    flushed_seq_[key] = covered_seq;
  }
  // Durable roll-forward mark for recovery. A write failure is tolerated:
  // the SSTables and the LSM manifest are already durable, and a stale
  // checkpoint only widens the next recovery's replay (the safe
  // direction). The next successful flush re-publishes it.
  RegionCheckpoint ckpt;
  ckpt.table = key.first;
  ckpt.region_id = key.second;
  ckpt.wal_seq = covered_seq;
  ckpt.flushed_ts = region->tree()->flushed_ts();
  Status ckpt_status = WriteRegionCheckpoint(lsm_options_.env, data_root_, ckpt);
  if (ckpt_status.ok()) {
    if (checkpoint_writes_counter_ != nullptr) checkpoint_writes_counter_->Add();
  } else {
    DIFFINDEX_LOG_WARN << "server " << id_ << ": checkpoint write for "
                       << key.first << "/r" << key.second
                       << " failed: " << ckpt_status.ToString();
    if (checkpoint_write_failed_counter_ != nullptr) {
      checkpoint_write_failed_counter_->Add();
    }
  }
  MutexLock wal_lock(wal_mu_);
  MaybeGcWalFilesLocked();
  MaybeRollWalLocked();
  return Status::OK();
}

Status RegionServer::FlushAll() {
  std::vector<std::shared_ptr<Region>> regions;
  {
    ReaderMutexLock lock(regions_mu_);
    for (const auto& [key, region] : regions_) regions.push_back(region);
  }
  for (const auto& region : regions) {
    DIFFINDEX_RETURN_NOT_OK(FlushRegionInternal(region));
  }
  return Status::OK();
}

Status RegionServer::CompactRegion(const std::string& table,
                                   uint64_t region_id) {
  auto region = FindRegionById(table, region_id);
  if (region == nullptr) return Status::WrongRegion(table);
  return region->tree()->CompactAll();
}

Status RegionServer::RollWalLocked() {
  if (!wal_files_.empty() && wal_files_.back().writer != nullptr) {
    // Best-effort close of the outgoing tail: a sync/close failure must
    // not leave us stuck appending to a (possibly torn) file. Complete
    // records already in it remain replayable either way, and flushed
    // data does not need the WAL at all.
    // ANALYZER_WAIVE(blocking-under-lock): closing fsync of the retiring
    // segment stays under wal_mu so no append can slip into the old tail
    // between its last sync and the switch to the new file.
    Status s = wal_files_.back().writer->Sync();
    if (!s.ok()) {
      DIFFINDEX_LOG_WARN << "wal sync on roll failed: " << s.ToString();
    }
    s = wal_files_.back().writer->Close();
    if (!s.ok()) {
      DIFFINDEX_LOG_WARN << "wal close on roll failed: " << s.ToString();
    }
    wal_files_.back().writer.reset();
  }
  WalFile file;
  file.file_seq = next_wal_file_seq_++;
  file.path = wal_dir_ + "/" + std::to_string(file.file_seq) + ".log";
  DIFFINDEX_RETURN_NOT_OK(wal::Writer::Open(lsm_options_.env, file.path,
                                            options_.wal_sync,
                                            &file.writer));
  wal_files_.push_back(std::move(file));
  if (wal_segments_gauge_ != nullptr) {
    wal_segments_gauge_->Set(static_cast<int64_t>(wal_files_.size()));
  }
  return Status::OK();
}

void RegionServer::MaybeRollWalLocked() {
  if (wal_files_.empty() || wal_files_.back().writer == nullptr) return;
  if (wal_files_.back().writer->bytes_written() < options_.wal_segment_bytes) {
    return;
  }
  // Sync before retiring the tail: once it stops being the sync target, a
  // group-commit ack could otherwise cover an edit that never reached
  // disk. A sync failure just defers the roll to a later attempt.
  // ANALYZER_WAIVE(blocking-under-lock): the pre-roll fsync must happen
  // under wal_mu — releasing it would let appends land in a tail that is
  // about to stop being the sync target, un-covering acked edits.
  Status s = wal_files_.back().writer->Sync();
  if (!s.ok()) {
    DIFFINDEX_LOG_WARN << "wal sync before segment roll failed: "
                       << s.ToString();
    return;
  }
  s = RollWalLocked();
  if (!s.ok()) {
    DIFFINDEX_LOG_WARN << "wal segment roll failed: " << s.ToString();
  }
}

void RegionServer::MaybeGcWalFilesLocked() {
  CHECK_YIELD_RES("wal.gc.begin", &wal_mu_);
  // Fault seam: an armed "wal.gc" point skips this whole pass, modeling a
  // stalled collector. Nothing depends on GC timeliness — a skipped pass
  // is retried on the next flush or background sweep.
  if (fault::FailpointRegistry::Global()->Fires("wal.gc")) return;
  // A closed WAL file is deletable once every region mentioned in it has
  // flushed past the file's highest edit for that region ("roll
  // forward") — a per-region refinement of the min-checkpoint rule: the
  // file's max seq per region is compared against that region's own
  // checkpoint instead of the min across all hosted regions.
  std::map<std::pair<std::string, uint64_t>, uint64_t> flushed;
  {
    ReaderMutexLock lock(regions_mu_);
    flushed = flushed_seq_;
  }
  for (auto it = wal_files_.begin(); it != wal_files_.end();) {
    if (it->writer != nullptr) {  // open tail: never GC'd
      ++it;
      continue;
    }
    bool deletable = true;
    for (const auto& [region_key, max_seq] : it->region_max_seq) {
      auto fit = flushed.find(region_key);
      // Regions moved away keep the file pinned conservatively.
      if (fit == flushed.end() || fit->second < max_seq) {
        deletable = false;
        break;
      }
    }
    if (deletable) {
      // Best-effort GC: an undeletable log is retried next pass, and
      // replaying fully-flushed edits is idempotent anyway.
      lsm_options_.env->RemoveFile(it->path).IgnoreError();
      if (wal_gc_deleted_counter_ != nullptr) wal_gc_deleted_counter_->Add();
      it = wal_files_.erase(it);
    } else {
      ++it;
    }
  }
  if (wal_segments_gauge_ != nullptr) {
    wal_segments_gauge_->Set(static_cast<int64_t>(wal_files_.size()));
  }
}

}  // namespace diffindex
