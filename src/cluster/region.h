// Region: a contiguous row-key range of one table, hosted by one region
// server and stored as one LSM tree (Section 2.2). Region data lives
// under <root>/tables/<table>/r<id>/, a shared directory standing in for
// HDFS: after a server failure the new owner opens the same directory.
//
// Concurrency (see also lsm/lsm_tree.h):
//   * `flush_gate`: puts hold it shared for their whole pipeline
//     (timestamp, WAL, memtable, AUQ enqueue); a flush holds it exclusive
//     while the AUQ drains and the memtable swaps. This is what makes the
//     paper's "pause & drain" (Figure 5) airtight: while the gate is held
//     exclusively no put can be between its memtable insert and its AUQ
//     enqueue, so PR(Flushed) = ∅.
//   * `write_mu`: serializes WAL append + memtable apply so the region's
//     edit order matches the log order (HBase sequences writes per region).

#ifndef DIFFINDEX_CLUSTER_REGION_H_
#define DIFFINDEX_CLUSTER_REGION_H_

#include <atomic>
#include <memory>
#include <string>

#include "lsm/lsm_tree.h"
#include "net/message.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace diffindex {

struct RegionId {
  std::string table;
  uint64_t id = 0;

  bool operator==(const RegionId& other) const {
    return id == other.id && table == other.table;
  }
};

class Region {
 public:
  static Status Open(const LsmOptions& options, const std::string& data_root,
                     const RegionInfoWire& info,
                     std::unique_ptr<Region>* region);

  const RegionInfoWire& info() const { return info_; }

  bool ContainsRow(const Slice& row) const {
    if (Slice(info_.start_row).compare(row) > 0) return false;
    return info_.end_row.empty() || row.compare(Slice(info_.end_row)) < 0;
  }

  LsmTree* tree() { return tree_.get(); }
  // Region-co-located local index store (Section 3.1), lazily created.
  // It carries no WAL entries: it is wiped and rebuilt from the base tree
  // whenever the region is (re)opened, so crash recovery never needs a
  // separate index log. Readers see the tree only after it is fully
  // constructed (release/acquire on the published pointer).
  LsmTree* local_index_tree() const {
    return local_index_view_.load(std::memory_order_acquire);
  }
  // REQUIRES: holding write_mu (serialized with other local-index writes).
  Status EnsureLocalIndexTree(const LsmOptions& options);

  // RETURN_CAPABILITY lets clang track locks acquired through these
  // accessors as `region->flush_gate_` / `region->write_mu_`.
  SharedMutex& flush_gate() RETURN_CAPABILITY(flush_gate_) {
    return flush_gate_;
  }
  Mutex& write_mu() RETURN_CAPABILITY(write_mu_) { return write_mu_; }

  // Fencing for region moves: set (under the exclusive gate) before the
  // final flush; writers re-check after acquiring the shared gate and
  // bounce with WrongRegion so no edit lands after the moving flush.
  void set_closed() { closed_.store(true, std::memory_order_release); }
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  // Admission signal: wall-clock micros at which the currently running
  // flush started waiting for (then holding) the exclusive gate; 0 when
  // no flush is active. Written by the flusher, read lock-free by the
  // put path's admission check.
  void set_flush_started_micros(uint64_t micros) {
    flush_started_micros_.store(micros, std::memory_order_release);
  }
  uint64_t flush_started_micros() const {
    return flush_started_micros_.load(std::memory_order_acquire);
  }

  static std::string DataDir(const std::string& data_root,
                             const std::string& table, uint64_t region_id);
  static std::string LocalIndexDir(const std::string& data_root,
                                   const std::string& table,
                                   uint64_t region_id);

 private:
  Region(const RegionInfoWire& info, std::unique_ptr<LsmTree> tree,
         std::string local_index_dir)
      : info_(info),
        tree_(std::move(tree)),
        local_index_dir_(std::move(local_index_dir)) {}

  RegionInfoWire info_;
  std::unique_ptr<LsmTree> tree_;
  std::string local_index_dir_;
  std::unique_ptr<LsmTree> local_index_tree_;
  std::atomic<LsmTree*> local_index_view_{nullptr};
  std::atomic<bool> closed_{false};
  std::atomic<uint64_t> flush_started_micros_{0};
  // The global acquisition order starts here: gate before write_mu,
  // write_mu before the server's WAL locks (region_server.h has the full
  // chain). The annotations feed the lock-order lint; the LockRank args
  // arm the runtime validator. A sync-full observer may hold two
  // regions' gates SHARED at once (base put on one region, index base
  // read routed to another) — same-rank shared acquisitions of distinct
  // instances are the one waived edge (util/lock_order.h).
  SharedMutex flush_gate_ ACQUIRED_BEFORE(write_mu_){LockRank::kFlushGate,
                                                     "flush_gate_"};
  Mutex write_mu_ ACQUIRED_BEFORE(wal_sync_mu_){LockRank::kWriteMu,
                                                "write_mu_"};
};

}  // namespace diffindex

#endif  // DIFFINDEX_CLUSTER_REGION_H_
