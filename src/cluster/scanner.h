// TableScanner: paged, resumable scans over a table — the client-side
// cursor a downstream application uses instead of materializing a whole
// ScanRows result (the paper's parallel-table-scan comparisons stream
// through tables this way).

#ifndef DIFFINDEX_CLUSTER_SCANNER_H_
#define DIFFINDEX_CLUSTER_SCANNER_H_

#include <memory>
#include <string>
#include <vector>

#include "cluster/client.h"

namespace diffindex {

class TableScanner {
 public:
  struct Options {
    std::string start_row;  // inclusive; "" = table start
    std::string end_row;    // exclusive; "" = table end
    Timestamp read_ts = kMaxTimestamp;
    uint32_t batch_rows = 256;
  };

  TableScanner(std::shared_ptr<Client> client, std::string table,
               const Options& options)
      : client_(std::move(client)),
        table_(std::move(table)),
        options_(options),
        cursor_(options.start_row) {}

  TableScanner(std::shared_ptr<Client> client, std::string table)
      : TableScanner(std::move(client), std::move(table), Options()) {}

  // Fetches the next batch; empty *rows and OK means the scan is done.
  Status NextBatch(std::vector<ScannedRow>* rows) {
    rows->clear();
    if (exhausted_) return Status::OK();
    DIFFINDEX_RETURN_NOT_OK(client_->ScanRows(table_, cursor_,
                                              options_.end_row,
                                              options_.read_ts,
                                              options_.batch_rows, rows));
    if (rows->empty() ||
        rows->size() < static_cast<size_t>(options_.batch_rows)) {
      exhausted_ = true;
    }
    if (!rows->empty()) {
      // The next possible row key after the last one returned ('\0' is
      // reserved, so appending 0x01 yields the smallest valid successor).
      cursor_ = rows->back().row + '\x01';
    }
    rows_returned_ += rows->size();
    return Status::OK();
  }

  bool exhausted() const { return exhausted_; }
  uint64_t rows_returned() const { return rows_returned_; }

 private:
  std::shared_ptr<Client> client_;
  const std::string table_;
  const Options options_;
  std::string cursor_;
  bool exhausted_ = false;
  uint64_t rows_returned_ = 0;
};

}  // namespace diffindex

#endif  // DIFFINDEX_CLUSTER_SCANNER_H_
