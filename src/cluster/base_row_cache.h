// Write-through base-row cache: serves the RB step of sync-full index
// maintenance (Algorithm 1's read of the old value at ts - δ) and the
// base-read legs of sync-insert read repair from memory instead of the
// LSM tree — the L(RB) term that dominates Equation 1.
//
// Per cell it remembers up to two versions:
//
//   v0 — the newest version this cache has seen for the cell;
//   v1 — v0's DIRECT predecessor (valid only while `prev_valid`).
//
// A lookup may answer from v0 only when `latest` certifies v0 really is
// the newest version in the tree (not merely the newest the cache saw),
// and from v1 only for read timestamps inside the half-open window
// [v1.ts, v0.ts) — exactly the RB(k, ts - δ) reads sync-full issues.
//
// `latest` is established by a verify read: on first sight of a cell the
// writer (holding the region's write_mu, so the write is serialized and
// still memtable-resident) reads the cell's newest version back from the
// tree and sets `latest` only if it matches the just-written timestamp.
// This stays sound even for region data adopted from another server —
// versions that never passed through this cache are visible to the verify
// read. Delete cells are never cached on first sight: a tree read cannot
// distinguish WHICH tombstone is newest.
//
// Consistency contract (see DESIGN.md "Base-row cache"): all NoteWrite
// calls for a cell happen under its region's write_mu and precede the
// put's acknowledgement, so a reader that starts after an acked write
// never sees an older version from the cache. The cache must be Clear()ed
// whenever region data changes hands outside the write path (region
// open/close/move/split, WAL replay) — RegionServer does this.

#ifndef DIFFINDEX_CLUSTER_BASE_ROW_CACHE_H_
#define DIFFINDEX_CLUSTER_BASE_ROW_CACHE_H_

#include <functional>
#include <memory>
#include <string>

#include "net/message.h"
#include "obs/metrics.h"
#include "util/cache.h"

namespace diffindex {

class BaseRowCache {
 public:
  // `metrics` may be null; exports counters `base_cache.hit` /
  // `base_cache.miss`.
  BaseRowCache(size_t capacity_bytes, obs::MetricsRegistry* metrics);

  enum class Result {
    kMiss,        // fall through to the LSM tree
    kHit,         // *value / *version_ts filled
    kHitDeleted,  // the visible version is a tombstone => NotFound
  };

  // Write-through update for one just-applied cell. MUST be called under
  // the owning region's write_mu, after the tree apply of the same cell.
  // `read_newest` reads the cell's newest version back from the tree
  // (return true + fill the version's timestamp, false if not found);
  // invoked only when the cache needs to (re)establish `latest`.
  void NoteWrite(const std::string& table, const Slice& row, const Cell& cell,
                 Timestamp ts,
                 const std::function<bool(Timestamp*)>& read_newest);

  // Point lookup of (table, row, column) at read_ts. On kHit, fills
  // *value and (if non-null) *version_ts. Never populates the cache.
  Result Lookup(const std::string& table, const Slice& row,
                const Slice& column, Timestamp read_ts, std::string* value,
                Timestamp* version_ts);

  // Drops everything. Called on region lifecycle events (open, close,
  // move, split) — any point where base data can change without passing
  // through NoteWrite.
  void Clear();

  size_t usage() const { return cache_.usage(); }

 private:
  struct Versioned {
    Timestamp ts = 0;
    bool deleted = false;
    std::string value;
  };
  struct Entry {
    bool latest = false;      // v0 is the newest version in the tree
    bool prev_valid = false;  // v1 is v0's direct predecessor
    Versioned v0;
    Versioned v1;
  };

  static std::string MakeKey(const std::string& table, const Slice& row,
                             const Slice& column);
  static std::string Encode(const Entry& entry);
  static bool Decode(const std::string& encoded, Entry* entry);
  void Store(const std::string& key, const Entry& entry);

  LruCache cache_;
  obs::Counter* hit_counter_ = nullptr;
  obs::Counter* miss_counter_ = nullptr;
};

}  // namespace diffindex

#endif  // DIFFINDEX_CLUSTER_BASE_ROW_CACHE_H_
