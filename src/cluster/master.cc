#include "cluster/master.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/logging.h"

namespace diffindex {

Master::Master(Fabric* fabric, std::string data_root,
               const MasterOptions& options)
    : fabric_(fabric), data_root_(std::move(data_root)), options_(options) {
  if (options_.metrics != nullptr) {
    recovery_regions_counter_ =
        options_.metrics->GetCounter("recovery.regions");
    recovery_retries_counter_ =
        options_.metrics->GetCounter("recovery.retries");
    recovery_reassigned_counter_ =
        options_.metrics->GetCounter("recovery.reassigned");
    recovery_failed_counter_ = options_.metrics->GetCounter("recovery.failed");
  }
}

Master::~Master() { Stop(); }

Status Master::Start() {
  fabric_->RegisterNode(
      kMasterNode, [this](MsgType type, Slice body, std::string* response) {
        return Handle(type, body, response);
      });
  if (options_.failure_detect_ms > 0) {
    detector_thread_ = std::thread([this] { DetectorLoop(); });
  }
  return Status::OK();
}

void Master::Stop() {
  if (stopped_.exchange(true)) return;
  if (detector_thread_.joinable()) detector_thread_.join();
  fabric_->UnregisterNode(kMasterNode);
}

Status Master::RegisterServer(RegionServer* server) {
  MutexLock lock(mu_);
  servers_[server->id()] = server;
  last_heartbeat_micros_[server->id()] = TimestampOracle::NowMicros();
  server->UpdateCatalog(CatalogSnapshot(catalog_.ListTables()));
  return Status::OK();
}

void Master::DeregisterServer(NodeId server_id) {
  MutexLock lock(mu_);
  servers_.erase(server_id);
  last_heartbeat_micros_.erase(server_id);
}

std::vector<NodeId> Master::live_servers() const {
  MutexLock lock(mu_);
  std::vector<NodeId> ids;
  ids.reserve(servers_.size());
  for (const auto& [id, server] : servers_) ids.push_back(id);
  return ids;
}

std::vector<RegionInfoWire> Master::regions() const {
  MutexLock lock(mu_);
  return regions_;
}

std::vector<std::string> Master::UniformHexSplits(int num_regions) {
  // Row keys in the workloads hash uniformly into hex strings, so split
  // points at i*256/n two-digit-hex prefixes balance the regions.
  std::vector<std::string> splits;
  for (int i = 1; i < num_regions; i++) {
    const unsigned boundary =
        static_cast<unsigned>(i) * 256u / static_cast<unsigned>(num_regions);
    char buf[8];
    snprintf(buf, sizeof(buf), "%02x", boundary & 0xffu);
    splits.emplace_back(buf);
  }
  return splits;
}

Status Master::CreateTable(const std::string& name,
                           std::vector<std::string> split_points) {
  MutexLock lock(mu_);
  DIFFINDEX_RETURN_NOT_OK(CreateTableLocked(name, std::move(split_points)));
  PushCatalogLocked();
  return Status::OK();
}

Status Master::CreateTableLocked(const std::string& name,
                                 std::vector<std::string> split_points) {
  if (servers_.empty()) {
    return Status::Unavailable("no region servers registered");
  }
  TableDescriptor desc;
  desc.name = name;
  desc.is_index_table = name.rfind("__idx_", 0) == 0;
  DIFFINDEX_RETURN_NOT_OK(catalog_.AddTable(desc));

  if (split_points.empty()) {
    split_points = UniformHexSplits(options_.default_regions_per_table);
  }
  std::sort(split_points.begin(), split_points.end());

  std::vector<RegionServer*> server_list;
  for (const auto& [id, server] : servers_) server_list.push_back(server);

  std::string start;
  for (size_t i = 0; i <= split_points.size(); i++) {
    RegionInfoWire info;
    info.table = name;
    info.region_id = next_region_id_++;
    info.start_row = start;
    info.end_row = i < split_points.size() ? split_points[i] : "";
    RegionServer* owner = server_list[next_assign_ % server_list.size()];
    next_assign_++;
    info.server_id = owner->id();
    DIFFINDEX_RETURN_NOT_OK(owner->OpenRegion(info));
    regions_.push_back(info);
    start = info.end_row;
  }
  layout_epoch_.fetch_add(1);
  DIFFINDEX_LOG_INFO << "master: created table " << name << " with "
                     << split_points.size() + 1 << " regions";
  return Status::OK();
}

Status Master::CreateIndex(const std::string& table,
                           const IndexDescriptor& index) {
  MutexLock lock(mu_);
  if (!catalog_.GetTable(table).has_value()) {
    return Status::NotFound("no such table: " + table);
  }
  IndexDescriptor resolved = index;
  if (resolved.is_local) {
    // Local indexes co-locate with their base regions: no backing table.
    resolved.index_table.clear();
  } else {
    resolved.index_table = IndexTableNameFor(table, index.name);
    // The index table is itself partitioned across all nodes — Diff-Index
    // builds *global* indexes (Section 3.1).
    DIFFINDEX_RETURN_NOT_OK(CreateTableLocked(resolved.index_table, {}));
  }
  DIFFINDEX_RETURN_NOT_OK(catalog_.AddIndex(table, resolved));
  layout_epoch_.fetch_add(1);
  PushCatalogLocked();
  DIFFINDEX_LOG_INFO << "master: created " << IndexSchemeName(index.scheme)
                     << " index " << index.name << " on " << table << "("
                     << index.column << ")";
  return Status::OK();
}

Status Master::AlterIndexScheme(const std::string& table,
                                const std::string& index_name,
                                IndexScheme scheme) {
  MutexLock lock(mu_);
  DIFFINDEX_RETURN_NOT_OK(
      catalog_.SetIndexScheme(table, index_name, scheme));
  layout_epoch_.fetch_add(1);
  PushCatalogLocked();
  DIFFINDEX_LOG_INFO << "master: index " << index_name << " on " << table
                     << " switched to " << IndexSchemeName(scheme);
  return Status::OK();
}

Status Master::DropIndex(const std::string& table,
                         const std::string& index_name) {
  MutexLock lock(mu_);
  DIFFINDEX_RETURN_NOT_OK(catalog_.DropIndex(table, index_name));
  layout_epoch_.fetch_add(1);
  PushCatalogLocked();
  return Status::OK();
}

void Master::PushCatalogLocked() {
  CatalogSnapshot snapshot(catalog_.ListTables());
  for (const auto& [id, server] : servers_) {
    server->UpdateCatalog(snapshot);
  }
}

Status Master::SplitRegion(const std::string& table, uint64_t region_id,
                           const std::string& split_key) {
  MutexLock lock(mu_);
  for (size_t i = 0; i < regions_.size(); i++) {
    const RegionInfoWire& parent = regions_[i];
    if (parent.table != table || parent.region_id != region_id) continue;

    auto server_it = servers_.find(parent.server_id);
    if (server_it == servers_.end()) {
      return Status::Unavailable("owning server not registered");
    }
    RegionInfoWire left = parent;
    left.region_id = next_region_id_++;
    left.end_row = split_key;
    RegionInfoWire right = parent;
    right.region_id = next_region_id_++;
    right.start_row = split_key;

    DIFFINDEX_RETURN_NOT_OK(server_it->second->SplitRegion(
        table, region_id, split_key, left, right));
    regions_[i] = left;
    regions_.insert(regions_.begin() + static_cast<long>(i) + 1, right);
    layout_epoch_.fetch_add(1);
    DIFFINDEX_LOG_INFO << "master: split " << table << "/r" << region_id
                       << " at '" << split_key << "'";
    return Status::OK();
  }
  return Status::NotFound("no such region");
}

Status Master::MoveRegion(const std::string& table, uint64_t region_id,
                          NodeId target_server) {
  // Resolve under the lock; perform the hand-off outside it (the source's
  // flush drains its AUQ, whose tasks fetch layout from this master).
  RegionServer* source = nullptr;
  RegionServer* target = nullptr;
  RegionInfoWire info;
  {
    MutexLock lock(mu_);
    auto target_it = servers_.find(target_server);
    if (target_it == servers_.end()) {
      return Status::NotFound("no such target server");
    }
    target = target_it->second;
    bool found = false;
    for (const RegionInfoWire& region : regions_) {
      if (region.table == table && region.region_id == region_id) {
        info = region;
        found = true;
        break;
      }
    }
    if (!found) return Status::NotFound("no such region");
    if (info.server_id == target_server) return Status::OK();
    auto source_it = servers_.find(info.server_id);
    if (source_it == servers_.end()) {
      return Status::Unavailable("source server not registered");
    }
    source = source_it->second;
  }

  DIFFINDEX_RETURN_NOT_OK(source->CloseRegionForMove(table, region_id));
  info.server_id = target_server;
  DIFFINDEX_RETURN_NOT_OK(target->OpenRegion(info));

  {
    MutexLock lock(mu_);
    for (RegionInfoWire& region : regions_) {
      if (region.table == table && region.region_id == region_id) {
        region.server_id = target_server;
      }
    }
    layout_epoch_.fetch_add(1);
  }
  DIFFINDEX_LOG_INFO << "master: moved " << table << "/r" << region_id
                     << " to server " << target_server;
  return Status::OK();
}

RegionInfoWire* Master::FindRegionLocked(const std::string& table,
                                         uint64_t region_id) {
  for (auto& info : regions_) {
    if (info.table == table && info.region_id == region_id) return &info;
  }
  return nullptr;
}

std::vector<std::string> Master::ListDeadWalFilesLocked() {
  std::vector<std::string> wal_paths;
  for (const auto& [id, dir] : dead_wal_dirs_) {
    std::vector<std::string> children;
    if (!Env::Default()->GetChildren(dir, &children).ok()) {
      continue;  // dir missing (never written / already retired): nothing
                 // to replay from this server
    }
    std::sort(children.begin(), children.end(),
              [](const std::string& a, const std::string& b) {
                return strtoull(a.c_str(), nullptr, 10) <
                       strtoull(b.c_str(), nullptr, 10);
              });
    for (const auto& child : children) {
      wal_paths.push_back(dir + "/" + child);
    }
  }
  return wal_paths;
}

void Master::MaybeRetireDeadWalDirsLocked() {
  // A dead server's WAL dir stays a replay source until nothing can need
  // it: no OnServerDead is mid-recovery (a second victim's regions replay
  // from the WHOLE dead set — its replayed-but-unflushed edits exist
  // nowhere but the original victim's log) and every opened-with-replay
  // region has flushed durably. The last recovery to finish cleans up.
  if (active_recoveries_ > 0 || !unflushed_recoveries_.empty()) return;
  for (const auto& [id, dir] : dead_wal_dirs_) {
    // Best-effort GC: a leftover dead-server WAL dir wastes disk but is
    // never replayed again, so a failed remove needs no retry path.
    Env::Default()->RemoveDirRecursively(dir).IgnoreError();
    DIFFINDEX_LOG_INFO << "master: retired dead server " << id << " wal dir "
                       << dir;
  }
  dead_wal_dirs_.clear();
}

Status Master::RecoverRegion(const RegionInfoWire& lost) {
  // Serialize per region: when two OnServerDead calls race over the same
  // region (a chained failure moved it from one victim to the next), the
  // second waits for the first to settle rather than double-opening the
  // region's LSM directory. Waiting is bounded — the holder's attempt and
  // flush loops both terminate.
  const std::pair<std::string, uint64_t> key{lost.table, lost.region_id};
  for (;;) {
    {
      MutexLock lock(mu_);
      if (recovering_.insert(key).second) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Status s = RecoverRegionExclusive(lost);
  MutexLock lock(mu_);
  recovering_.erase(key);
  return s;
}

Status Master::RecoverRegionExclusive(const RegionInfoWire& lost) {
  if (recovery_regions_counter_ != nullptr) recovery_regions_counter_->Add();
  Status last;
  const int max_attempts = std::max(1, options_.recovery_open_attempts);
  for (int attempt = 0; attempt < max_attempts; attempt++) {
    if (attempt > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(1 << std::min(attempt, 5)));
      if (recovery_retries_counter_ != nullptr) {
        recovery_retries_counter_->Add();
      }
    }
    // Re-read the layout AND the dead-WAL set each attempt: a re-entrant
    // OnServerDead (second victim mid-recovery) may have reassigned this
    // region, and its victim's WAL files must be part of any replay that
    // starts after that death was recorded. A stale snapshot here is a
    // data-loss bug, not an optimization.
    RegionServer* owner = nullptr;
    RegionInfoWire info;
    std::vector<std::string> wal_paths;
    {
      MutexLock lock(mu_);
      RegionInfoWire* cur = FindRegionLocked(lost.table, lost.region_id);
      if (cur == nullptr) return Status::OK();  // dropped/split meanwhile
      auto it = servers_.find(cur->server_id);
      if (it == servers_.end()) {
        // The assigned owner itself died: the OnServerDead for that victim
        // finds the region still published to it and recovers it from the
        // full dead-WAL set, including our victim's files.
        return Status::OK();
      }
      owner = it->second;
      info = *cur;
      wal_paths = ListDeadWalFilesLocked();
    }

    Status s = owner->OpenRegionWithRecovery(info, wal_paths);
    if (s.ok()) {
      // Until the phase-2 flush (FlushRecoveredRegion, after ALL of this
      // victim's regions have been opened) the replayed edits live only
      // in the new owner's memtable, backed by the still-pinned dead WAL
      // files — the unflushed_recoveries_ entry records exactly that.
      MutexLock lock(mu_);
      unflushed_recoveries_.insert({info.table, info.region_id});
      return Status::OK();
    }

    last = s;
    DIFFINDEX_LOG_WARN << "master: open-with-recovery of " << info.table
                       << "/r" << info.region_id << " on server "
                       << owner->id() << " failed: " << s.ToString();
    if (s.IsUnavailable()) {
      // The owner is stopped but its death hasn't been processed yet
      // (OnServerDead for it is imminent or mid-phase-0). Reassigning now
      // could strand acked edits: the region may be PUBLISHED on that
      // owner, with edits in a WAL dir not yet recorded as dead. Back off
      // and retry; once the death lands, the next attempt sees the owner
      // gone and defers to its failover (which replays the full set).
      continue;
    }
    // A failed open-with-recovery publishes nothing on `owner`, so
    // reassigning to a different survivor cannot strand acked edits.
    {
      MutexLock lock(mu_);
      RegionInfoWire* cur = FindRegionLocked(lost.table, lost.region_id);
      if (cur == nullptr) return Status::OK();
      if (cur->server_id == owner->id() && !servers_.empty()) {
        std::vector<RegionServer*> survivors;
        for (const auto& [id, server] : servers_) survivors.push_back(server);
        RegionServer* next_owner = survivors[next_assign_++ % survivors.size()];
        if (next_owner->id() == owner->id() && survivors.size() > 1) {
          next_owner = survivors[next_assign_++ % survivors.size()];
        }
        if (next_owner->id() != cur->server_id) {
          cur->server_id = next_owner->id();
          layout_epoch_.fetch_add(1);
          if (recovery_reassigned_counter_ != nullptr) {
            recovery_reassigned_counter_->Add();
          }
        }
      }
      // else: a re-entrant recovery moved it; the next attempt re-reads
      // the layout and either proceeds there or defers.
    }
  }
  return last;
}

Status Master::FlushRecoveredRegion(const RegionInfoWire& lost) {
  RegionServer* owner = nullptr;
  RegionInfoWire info;
  {
    MutexLock lock(mu_);
    RegionInfoWire* cur = FindRegionLocked(lost.table, lost.region_id);
    if (cur == nullptr) {
      // Dropped/split meanwhile: no flush is coming, so the pin must go.
      unflushed_recoveries_.erase({lost.table, lost.region_id});
      return Status::OK();
    }
    auto it = servers_.find(cur->server_id);
    if (it == servers_.end()) {
      // The new owner already died; its own OnServerDead re-recovers the
      // region from the full dead-WAL set. The unflushed_recoveries_
      // entry keeps every dead WAL dir pinned until that flush lands.
      return Status::OK();
    }
    owner = it->second;
    info = *cur;
  }
  // Make the replayed state durable under the new owner's WAL regime
  // (drain-before-flush runs the re-enqueued index updates first).
  Status flush_status;
  for (int f = 0; f < 10; f++) {
    flush_status = owner->FlushRegion(info.table, info.region_id);
    if (flush_status.ok() || flush_status.IsUnavailable()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  if (flush_status.ok()) {
    MutexLock lock(mu_);
    unflushed_recoveries_.erase({info.table, info.region_id});
    return Status::OK();
  }
  if (flush_status.IsUnavailable()) {
    // The new owner crashed between open and flush: defer, as above.
    DIFFINDEX_LOG_WARN << "master: new owner of " << info.table << "/r"
                       << info.region_id
                       << " stopped before the recovery flush; "
                          "deferring to its own failover";
    return Status::OK();
  }
  // Persistent flush failure with the region live and serving on
  // `owner`: keep the assignment — moving it away without its local
  // WAL would lose edits acked since the open — and keep the dead
  // WAL dirs pinned. The next successful flush (put-path NeedsFlush,
  // FlushAll, a later sweep) completes durability.
  DIFFINDEX_LOG_ERROR << "master: post-recovery flush of " << info.table
                      << "/r" << info.region_id
                      << " failed: " << flush_status.ToString();
  return flush_status;
}

Status Master::OnServerDead(NodeId server_id) {
  // Phase 0 (under the lock): drop the dead server, record its WAL dir as
  // a replay source, pick new owners, publish the new layout. The actual
  // replay and flush happen OUTSIDE the lock: recovery drains AUQs whose
  // tasks need layout fetches and index puts against the newly assigned
  // regions.
  std::vector<RegionInfoWire> lost;
  {
    MutexLock lock(mu_);
    servers_.erase(server_id);
    last_heartbeat_micros_.erase(server_id);
    // The dead server's WAL directory on shared storage ("HDFS"). Kept
    // pinned until every recovery that might replay from it has flushed.
    dead_wal_dirs_[server_id] =
        data_root_ + "/wal/s" + std::to_string(server_id);
    if (servers_.empty()) {
      return Status::Unavailable("no survivors to host regions");
    }
    std::vector<RegionServer*> survivors;
    for (const auto& [id, server] : servers_) survivors.push_back(server);
    for (auto& info : regions_) {
      if (info.server_id != server_id) continue;
      RegionServer* new_owner = survivors[next_assign_ % survivors.size()];
      next_assign_++;
      info.server_id = new_owner->id();
      lost.push_back(info);
    }
    layout_epoch_.fetch_add(1);
    active_recoveries_++;
  }

  // Phase 1, failure-isolated per region: each region's open + bounded
  // replay runs independently, so one region's persistent failure no
  // longer leaves its siblings published-but-never-opened.
  Status first_failure;
  size_t failed = 0;
  std::vector<RegionInfoWire> opened;
  for (const auto& info : lost) {
    Status s = RecoverRegion(info);
    if (s.ok()) {
      opened.push_back(info);
    } else {
      failed++;
      DIFFINDEX_LOG_ERROR << "master: recovery of " << info.table << "/r"
                          << info.region_id << " failed: " << s.ToString();
      if (recovery_failed_counter_ != nullptr) recovery_failed_counter_->Add();
      if (first_failure.ok()) first_failure = s;
    }
  }
  // Phase 2, only after EVERY lost region is opened and serving: the
  // recovery flush drains the new owner's AUQ, and a queued index task
  // may target a sibling region from the same dead server — flushing
  // inside the loop above would deadlock this thread against the open it
  // hasn't reached yet (the task retries forever, the drain never ends).
  for (const auto& info : opened) {
    Status s = FlushRecoveredRegion(info);
    if (!s.ok()) {
      failed++;
      if (recovery_failed_counter_ != nullptr) recovery_failed_counter_->Add();
      if (first_failure.ok()) first_failure = s;
    }
  }
  {
    MutexLock lock(mu_);
    active_recoveries_--;
    MaybeRetireDeadWalDirsLocked();
  }
  DIFFINDEX_LOG_INFO << "master: server " << server_id << " dead, "
                     << lost.size() - failed << "/" << lost.size()
                     << " regions recovered";
  return first_failure;
}

Status Master::Handle(MsgType type, Slice body, std::string* response) {
  switch (type) {
    case MsgType::kHeartbeat: {
      HeartbeatRequest hb;
      if (!HeartbeatRequest::DecodeFrom(&body, &hb)) {
        return Status::InvalidArgument("malformed heartbeat");
      }
      MutexLock lock(mu_);
      last_heartbeat_micros_[hb.server_id] = TimestampOracle::NowMicros();
      return Status::OK();
    }
    case MsgType::kFetchLayout: {
      FetchLayoutResponse resp;
      {
        MutexLock lock(mu_);
        resp.layout_epoch = layout_epoch_.load();
        for (const auto& table : catalog_.ListTables()) {
          resp.tables.push_back(ToWire(table));
        }
        resp.regions = regions_;
      }
      resp.EncodeTo(response);
      return Status::OK();
    }
    default:
      return Status::NotSupported("master: unexpected message type");
  }
}

void Master::DetectorLoop() {
  while (!stopped_.load()) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.failure_detect_ms / 2 + 1));
    std::vector<NodeId> dead;
    {
      MutexLock lock(mu_);
      const uint64_t now = TimestampOracle::NowMicros();
      const uint64_t limit =
          static_cast<uint64_t>(options_.failure_detect_ms) * 1000;
      for (const auto& [id, last] : last_heartbeat_micros_) {
        if (now - last > limit) dead.push_back(id);
      }
    }
    for (NodeId id : dead) {
      DIFFINDEX_LOG_WARN << "master: server " << id
                         << " missed heartbeats, declaring dead";
      fabric_->SetNodeDown(id, true);
      // The detector loop has nowhere to propagate a recovery error;
      // OnServerDead logs its own failures and the next sweep retries.
      OnServerDead(id).IgnoreError();
    }
  }
}

}  // namespace diffindex
