#include "cluster/master.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/logging.h"

namespace diffindex {

Master::Master(Fabric* fabric, std::string data_root,
               const MasterOptions& options)
    : fabric_(fabric), data_root_(std::move(data_root)), options_(options) {}

Master::~Master() { Stop(); }

Status Master::Start() {
  fabric_->RegisterNode(
      kMasterNode, [this](MsgType type, Slice body, std::string* response) {
        return Handle(type, body, response);
      });
  if (options_.failure_detect_ms > 0) {
    detector_thread_ = std::thread([this] { DetectorLoop(); });
  }
  return Status::OK();
}

void Master::Stop() {
  if (stopped_.exchange(true)) return;
  if (detector_thread_.joinable()) detector_thread_.join();
  fabric_->UnregisterNode(kMasterNode);
}

Status Master::RegisterServer(RegionServer* server) {
  MutexLock lock(mu_);
  servers_[server->id()] = server;
  last_heartbeat_micros_[server->id()] = TimestampOracle::NowMicros();
  server->UpdateCatalog(CatalogSnapshot(catalog_.ListTables()));
  return Status::OK();
}

void Master::DeregisterServer(NodeId server_id) {
  MutexLock lock(mu_);
  servers_.erase(server_id);
  last_heartbeat_micros_.erase(server_id);
}

std::vector<NodeId> Master::live_servers() const {
  MutexLock lock(mu_);
  std::vector<NodeId> ids;
  ids.reserve(servers_.size());
  for (const auto& [id, server] : servers_) ids.push_back(id);
  return ids;
}

std::vector<RegionInfoWire> Master::regions() const {
  MutexLock lock(mu_);
  return regions_;
}

std::vector<std::string> Master::UniformHexSplits(int num_regions) {
  // Row keys in the workloads hash uniformly into hex strings, so split
  // points at i*256/n two-digit-hex prefixes balance the regions.
  std::vector<std::string> splits;
  for (int i = 1; i < num_regions; i++) {
    const unsigned boundary =
        static_cast<unsigned>(i) * 256u / static_cast<unsigned>(num_regions);
    char buf[8];
    snprintf(buf, sizeof(buf), "%02x", boundary & 0xffu);
    splits.emplace_back(buf);
  }
  return splits;
}

Status Master::CreateTable(const std::string& name,
                           std::vector<std::string> split_points) {
  MutexLock lock(mu_);
  DIFFINDEX_RETURN_NOT_OK(CreateTableLocked(name, std::move(split_points)));
  PushCatalogLocked();
  return Status::OK();
}

Status Master::CreateTableLocked(const std::string& name,
                                 std::vector<std::string> split_points) {
  if (servers_.empty()) {
    return Status::Unavailable("no region servers registered");
  }
  TableDescriptor desc;
  desc.name = name;
  desc.is_index_table = name.rfind("__idx_", 0) == 0;
  DIFFINDEX_RETURN_NOT_OK(catalog_.AddTable(desc));

  if (split_points.empty()) {
    split_points = UniformHexSplits(options_.default_regions_per_table);
  }
  std::sort(split_points.begin(), split_points.end());

  std::vector<RegionServer*> server_list;
  for (const auto& [id, server] : servers_) server_list.push_back(server);

  std::string start;
  for (size_t i = 0; i <= split_points.size(); i++) {
    RegionInfoWire info;
    info.table = name;
    info.region_id = next_region_id_++;
    info.start_row = start;
    info.end_row = i < split_points.size() ? split_points[i] : "";
    RegionServer* owner = server_list[next_assign_ % server_list.size()];
    next_assign_++;
    info.server_id = owner->id();
    DIFFINDEX_RETURN_NOT_OK(owner->OpenRegion(info));
    regions_.push_back(info);
    start = info.end_row;
  }
  layout_epoch_.fetch_add(1);
  DIFFINDEX_LOG_INFO << "master: created table " << name << " with "
                     << split_points.size() + 1 << " regions";
  return Status::OK();
}

Status Master::CreateIndex(const std::string& table,
                           const IndexDescriptor& index) {
  MutexLock lock(mu_);
  if (!catalog_.GetTable(table).has_value()) {
    return Status::NotFound("no such table: " + table);
  }
  IndexDescriptor resolved = index;
  if (resolved.is_local) {
    // Local indexes co-locate with their base regions: no backing table.
    resolved.index_table.clear();
  } else {
    resolved.index_table = IndexTableNameFor(table, index.name);
    // The index table is itself partitioned across all nodes — Diff-Index
    // builds *global* indexes (Section 3.1).
    DIFFINDEX_RETURN_NOT_OK(CreateTableLocked(resolved.index_table, {}));
  }
  DIFFINDEX_RETURN_NOT_OK(catalog_.AddIndex(table, resolved));
  layout_epoch_.fetch_add(1);
  PushCatalogLocked();
  DIFFINDEX_LOG_INFO << "master: created " << IndexSchemeName(index.scheme)
                     << " index " << index.name << " on " << table << "("
                     << index.column << ")";
  return Status::OK();
}

Status Master::AlterIndexScheme(const std::string& table,
                                const std::string& index_name,
                                IndexScheme scheme) {
  MutexLock lock(mu_);
  DIFFINDEX_RETURN_NOT_OK(
      catalog_.SetIndexScheme(table, index_name, scheme));
  layout_epoch_.fetch_add(1);
  PushCatalogLocked();
  DIFFINDEX_LOG_INFO << "master: index " << index_name << " on " << table
                     << " switched to " << IndexSchemeName(scheme);
  return Status::OK();
}

Status Master::DropIndex(const std::string& table,
                         const std::string& index_name) {
  MutexLock lock(mu_);
  DIFFINDEX_RETURN_NOT_OK(catalog_.DropIndex(table, index_name));
  layout_epoch_.fetch_add(1);
  PushCatalogLocked();
  return Status::OK();
}

void Master::PushCatalogLocked() {
  CatalogSnapshot snapshot(catalog_.ListTables());
  for (const auto& [id, server] : servers_) {
    server->UpdateCatalog(snapshot);
  }
}

Status Master::SplitRegion(const std::string& table, uint64_t region_id,
                           const std::string& split_key) {
  MutexLock lock(mu_);
  for (size_t i = 0; i < regions_.size(); i++) {
    const RegionInfoWire& parent = regions_[i];
    if (parent.table != table || parent.region_id != region_id) continue;

    auto server_it = servers_.find(parent.server_id);
    if (server_it == servers_.end()) {
      return Status::Unavailable("owning server not registered");
    }
    RegionInfoWire left = parent;
    left.region_id = next_region_id_++;
    left.end_row = split_key;
    RegionInfoWire right = parent;
    right.region_id = next_region_id_++;
    right.start_row = split_key;

    DIFFINDEX_RETURN_NOT_OK(server_it->second->SplitRegion(
        table, region_id, split_key, left, right));
    regions_[i] = left;
    regions_.insert(regions_.begin() + static_cast<long>(i) + 1, right);
    layout_epoch_.fetch_add(1);
    DIFFINDEX_LOG_INFO << "master: split " << table << "/r" << region_id
                       << " at '" << split_key << "'";
    return Status::OK();
  }
  return Status::NotFound("no such region");
}

Status Master::MoveRegion(const std::string& table, uint64_t region_id,
                          NodeId target_server) {
  // Resolve under the lock; perform the hand-off outside it (the source's
  // flush drains its AUQ, whose tasks fetch layout from this master).
  RegionServer* source = nullptr;
  RegionServer* target = nullptr;
  RegionInfoWire info;
  {
    MutexLock lock(mu_);
    auto target_it = servers_.find(target_server);
    if (target_it == servers_.end()) {
      return Status::NotFound("no such target server");
    }
    target = target_it->second;
    bool found = false;
    for (const RegionInfoWire& region : regions_) {
      if (region.table == table && region.region_id == region_id) {
        info = region;
        found = true;
        break;
      }
    }
    if (!found) return Status::NotFound("no such region");
    if (info.server_id == target_server) return Status::OK();
    auto source_it = servers_.find(info.server_id);
    if (source_it == servers_.end()) {
      return Status::Unavailable("source server not registered");
    }
    source = source_it->second;
  }

  DIFFINDEX_RETURN_NOT_OK(source->CloseRegionForMove(table, region_id));
  info.server_id = target_server;
  DIFFINDEX_RETURN_NOT_OK(target->OpenRegion(info));

  {
    MutexLock lock(mu_);
    for (RegionInfoWire& region : regions_) {
      if (region.table == table && region.region_id == region_id) {
        region.server_id = target_server;
      }
    }
    layout_epoch_.fetch_add(1);
  }
  DIFFINDEX_LOG_INFO << "master: moved " << table << "/r" << region_id
                     << " to server " << target_server;
  return Status::OK();
}

Status Master::OnServerDead(NodeId server_id) {
  // Phase 0 (under the lock): drop the dead server, pick new owners,
  // publish the new layout. The actual replay and flush happen OUTSIDE
  // the lock: recovery drains AUQs whose tasks need layout fetches and
  // index puts against the newly assigned regions.
  std::vector<std::pair<RegionInfoWire, RegionServer*>> moves;
  std::vector<std::string> wal_paths;
  {
    MutexLock lock(mu_);
    servers_.erase(server_id);
    last_heartbeat_micros_.erase(server_id);
    if (servers_.empty()) {
      return Status::Unavailable("no survivors to host regions");
    }

    // The dead server's WAL directory on shared storage ("HDFS").
    const std::string dead_wal_dir =
        data_root_ + "/wal/s" + std::to_string(server_id);
    std::vector<std::string> children;
    if (Env::Default()->GetChildren(dead_wal_dir, &children).ok()) {
      std::sort(children.begin(), children.end(),
                [](const std::string& a, const std::string& b) {
                  return strtoull(a.c_str(), nullptr, 10) <
                         strtoull(b.c_str(), nullptr, 10);
                });
      for (const auto& child : children) {
        wal_paths.push_back(dead_wal_dir + "/" + child);
      }
    }

    std::vector<RegionServer*> survivors;
    for (const auto& [id, server] : servers_) survivors.push_back(server);
    for (auto& info : regions_) {
      if (info.server_id != server_id) continue;
      RegionServer* new_owner = survivors[next_assign_ % survivors.size()];
      next_assign_++;
      info.server_id = new_owner->id();
      moves.emplace_back(info, new_owner);
    }
    layout_epoch_.fetch_add(1);
  }

  // Phase 1: open + WAL split/replay on every new owner. Regions start
  // serving and the replayed index work is re-enqueued into the AUQs.
  for (auto& [info, new_owner] : moves) {
    Status s = new_owner->OpenRegionWithRecovery(info, wal_paths);
    if (!s.ok()) {
      DIFFINDEX_LOG_ERROR << "master: recovery of " << info.table << "/r"
                          << info.region_id << " failed: " << s.ToString();
      return s;
    }
  }

  // Phase 2: flush the recovered regions so their state is durable under
  // the new owners' WAL regime (drain-before-flush runs the re-enqueued
  // index updates first — every target region is reachable by now).
  // Replayed edits live only in the new owner's memtable until this flush:
  // the dead server's WAL files are never consulted again, so a transient
  // flush failure (full disk, injected I/O fault) must be retried — and a
  // persistently failing region must not abort the flushes of the others.
  Status first_failure;
  for (auto& [info, new_owner] : moves) {
    Status s;
    for (int attempt = 0; attempt < 10; attempt++) {
      s = new_owner->FlushRegion(info.table, info.region_id);
      if (s.ok()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    if (!s.ok()) {
      DIFFINDEX_LOG_ERROR << "master: post-recovery flush of " << info.table
                          << "/r" << info.region_id
                          << " failed: " << s.ToString();
      if (first_failure.ok()) first_failure = s;
    }
  }
  DIFFINDEX_RETURN_NOT_OK(first_failure);
  DIFFINDEX_LOG_INFO << "master: server " << server_id << " dead, "
                     << moves.size() << " regions reassigned";
  return Status::OK();
}

Status Master::Handle(MsgType type, Slice body, std::string* response) {
  switch (type) {
    case MsgType::kHeartbeat: {
      HeartbeatRequest hb;
      if (!HeartbeatRequest::DecodeFrom(&body, &hb)) {
        return Status::InvalidArgument("malformed heartbeat");
      }
      MutexLock lock(mu_);
      last_heartbeat_micros_[hb.server_id] = TimestampOracle::NowMicros();
      return Status::OK();
    }
    case MsgType::kFetchLayout: {
      FetchLayoutResponse resp;
      {
        MutexLock lock(mu_);
        resp.layout_epoch = layout_epoch_.load();
        for (const auto& table : catalog_.ListTables()) {
          resp.tables.push_back(ToWire(table));
        }
        resp.regions = regions_;
      }
      resp.EncodeTo(response);
      return Status::OK();
    }
    default:
      return Status::NotSupported("master: unexpected message type");
  }
}

void Master::DetectorLoop() {
  while (!stopped_.load()) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.failure_detect_ms / 2 + 1));
    std::vector<NodeId> dead;
    {
      MutexLock lock(mu_);
      const uint64_t now = TimestampOracle::NowMicros();
      const uint64_t limit =
          static_cast<uint64_t>(options_.failure_detect_ms) * 1000;
      for (const auto& [id, last] : last_heartbeat_micros_) {
        if (now - last > limit) dead.push_back(id);
      }
    }
    for (NodeId id : dead) {
      DIFFINDEX_LOG_WARN << "master: server " << id
                         << " missed heartbeats, declaring dead";
      fabric_->SetNodeDown(id, true);
      // The detector loop has nowhere to propagate a recovery error;
      // OnServerDead logs its own failures and the next sweep retries.
      OnServerDead(id).IgnoreError();
    }
  }
}

}  // namespace diffindex
