// Durable per-region flush checkpoints (recovery roll-forward marks).
//
// On every successful flush a region persists a tiny CHECKPOINT file in
// its data directory recording the highest WAL edit sequence covered by
// its on-disk SSTables. Recovery reads it first and replays only the WAL
// suffix past it, so failover cost is proportional to un-flushed data,
// not to log history (Section 5.3; ROADMAP item 5).
//
// The checkpoint is deliberately separate from the LSM TABLES manifest:
// the manifest describes storage (which SSTables exist) and a corrupt
// manifest must fail the open, while a corrupt checkpoint merely widens
// replay — ReadRegionCheckpoint distinguishes NotFound (no checkpoint
// yet: fall back to the manifest's applied_seq) from Corruption (ignore
// the file and replay the full log; replay is idempotent under the
// explicit-timestamp rule, so over-replay can duplicate work but never
// lose or invent data).
//
// Durability protocol: the payload is CRC32C-framed and written via
// write-temp -> fsync -> rename, the same atomic-publish pattern the LSM
// manifest uses. A crash between flush and checkpoint publish leaves the
// previous checkpoint in place, which only under-reports the flushed
// prefix — again the safe direction.

#ifndef DIFFINDEX_CLUSTER_CHECKPOINT_H_
#define DIFFINDEX_CLUSTER_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "util/env.h"
#include "util/status.h"
#include "util/timestamp_oracle.h"

namespace diffindex {

struct RegionCheckpoint {
  std::string table;
  uint64_t region_id = 0;
  // Highest WAL edit sequence whose effects are in on-disk SSTables.
  // Replay skips every edit with seq <= wal_seq.
  uint64_t wal_seq = 0;
  // Newest cell timestamp covered by the flush (diagnostics only).
  Timestamp flushed_ts = 0;
};

// <region data dir>/CHECKPOINT, next to the LSM TABLES manifest.
std::string RegionCheckpointPath(const std::string& data_root,
                                 const std::string& table,
                                 uint64_t region_id);

// Atomically publishes `ckpt` (failpoint: "checkpoint.write").
Status WriteRegionCheckpoint(Env* env, const std::string& data_root,
                             const RegionCheckpoint& ckpt);

// OK: *out filled. NotFound: no checkpoint file exists (pre-checkpoint
// region). Corruption: the file exists but is truncated, fails its CRC,
// or names a different region — callers must fall back to full replay.
Status ReadRegionCheckpoint(Env* env, const std::string& data_root,
                            const std::string& table, uint64_t region_id,
                            RegionCheckpoint* out);

}  // namespace diffindex

#endif  // DIFFINDEX_CLUSTER_CHECKPOINT_H_
