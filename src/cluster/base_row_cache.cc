#include "cluster/base_row_cache.h"

#include "check/yield.h"
#include "util/coding.h"

namespace diffindex {

BaseRowCache::BaseRowCache(size_t capacity_bytes,
                           obs::MetricsRegistry* metrics)
    : cache_(capacity_bytes) {
  if (metrics != nullptr) {
    hit_counter_ = metrics->GetCounter("base_cache.hit");
    miss_counter_ = metrics->GetCounter("base_cache.miss");
  }
}

std::string BaseRowCache::MakeKey(const std::string& table, const Slice& row,
                                  const Slice& column) {
  std::string key;
  PutLengthPrefixedSlice(&key, table);
  key += EncodeCellKey(row, column);
  return key;
}

std::string BaseRowCache::Encode(const Entry& entry) {
  std::string out;
  uint8_t flags = 0;
  if (entry.latest) flags |= 1;
  if (entry.prev_valid) flags |= 2;
  out.push_back(static_cast<char>(flags));
  PutFixed64(&out, entry.v0.ts);
  out.push_back(entry.v0.deleted ? 1 : 0);
  PutLengthPrefixedSlice(&out, entry.v0.value);
  if (entry.prev_valid) {
    PutFixed64(&out, entry.v1.ts);
    out.push_back(entry.v1.deleted ? 1 : 0);
    PutLengthPrefixedSlice(&out, entry.v1.value);
  }
  return out;
}

bool BaseRowCache::Decode(const std::string& encoded, Entry* entry) {
  Slice in(encoded);
  if (in.empty()) return false;
  const uint8_t flags = static_cast<uint8_t>(in[0]);
  in.remove_prefix(1);
  entry->latest = (flags & 1) != 0;
  entry->prev_valid = (flags & 2) != 0;
  if (!GetFixed64(&in, &entry->v0.ts) || in.empty()) return false;
  entry->v0.deleted = in[0] != 0;
  in.remove_prefix(1);
  if (!GetLengthPrefixedString(&in, &entry->v0.value)) return false;
  if (!entry->prev_valid) return true;
  if (!GetFixed64(&in, &entry->v1.ts) || in.empty()) return false;
  entry->v1.deleted = in[0] != 0;
  in.remove_prefix(1);
  return GetLengthPrefixedString(&in, &entry->v1.value);
}

void BaseRowCache::Store(const std::string& key, const Entry& entry) {
  auto value = std::make_shared<const std::string>(Encode(entry));
  const size_t charge = key.size() + value->size() + 64;  // map overhead
  cache_.Insert(key, std::move(value), charge);
}

void BaseRowCache::NoteWrite(
    const std::string& table, const Slice& row, const Cell& cell,
    Timestamp ts, const std::function<bool(Timestamp*)>& read_newest) {
  // Key-only entries (index tables store the whole fact in the row key,
  // column "") would only pollute the cache — base reads always name a
  // real column.
  if (cell.column.empty()) return;
  // Decision point between the memtable apply and the cache populate:
  // a concurrent lookup here sees the tree's new version but a stale (or
  // absent) cache entry — the window the two-version design must absorb.
  CHECK_YIELD("cache.populate");
  const std::string key = MakeKey(table, row, cell.column);

  Entry entry;
  auto cached = cache_.Lookup(key);
  if (cached == nullptr || !Decode(*cached, &entry)) {
    // First sight of the cell. A tombstone is never cached here: the
    // verify read returns NotFound for ANY newest tombstone, so it cannot
    // certify that OURS is the newest — a put hidden between two
    // tombstones would be unreachable but real.
    if (cell.is_delete) return;
    // The verify read races later writers: certification holds only if
    // our version is still the newest when the read lands.
    CHECK_YIELD("cache.verify");
    Timestamp newest = 0;
    entry.latest = read_newest(&newest) && newest == ts;
    entry.prev_valid = false;
    entry.v0 = Versioned{ts, false, cell.value};
    Store(key, entry);
    return;
  }

  if (ts > entry.v0.ts) {
    // The common case: a newer version arrives. If v0 was certified
    // newest, nothing can sit between v0 and this write (writers to the
    // cell serialize on the region's write_mu), so v0 becomes the new
    // version's direct predecessor and the new version is now the newest.
    const bool old_latest = entry.latest;
    entry.v1 = entry.v0;
    entry.prev_valid = old_latest;
    entry.v0 = Versioned{ts, cell.is_delete, cell.is_delete ? "" : cell.value};
    if (old_latest) {
      entry.latest = true;
    } else if (!cell.is_delete) {
      // v0 was not certified; try to (re)establish with a verify read.
      CHECK_YIELD("cache.verify");
      Timestamp newest = 0;
      entry.latest = read_newest(&newest) && newest == ts;
    } else {
      entry.latest = false;  // a tombstone cannot be verified (see above)
    }
    Store(key, entry);
    return;
  }

  if (ts == entry.v0.ts) {
    // Overwrite at the same timestamp (LSM last-writer-wins per version).
    entry.v0.deleted = cell.is_delete;
    entry.v0.value = cell.is_delete ? "" : cell.value;
    Store(key, entry);
    return;
  }

  // Out-of-order write (explicit older timestamp). It can only affect the
  // v1 window: if it lands inside [v1.ts, v0.ts) it becomes v0's new
  // direct predecessor; anything older than v1 is invisible to both
  // windows and is ignored.
  if (entry.prev_valid && entry.v1.ts <= ts) {
    entry.v1 = Versioned{ts, cell.is_delete, cell.is_delete ? "" : cell.value};
    Store(key, entry);
  }
}

BaseRowCache::Result BaseRowCache::Lookup(const std::string& table,
                                          const Slice& row,
                                          const Slice& column,
                                          Timestamp read_ts,
                                          std::string* value,
                                          Timestamp* version_ts) {
  CHECK_YIELD("cache.lookup");
  auto cached = cache_.Lookup(MakeKey(table, row, column));
  Entry entry;
  if (cached == nullptr || !Decode(*cached, &entry)) {
    if (miss_counter_ != nullptr) miss_counter_->Add();
    return Result::kMiss;
  }
  const Versioned* hit = nullptr;
  if (entry.latest && read_ts >= entry.v0.ts) {
    hit = &entry.v0;
  } else if (entry.prev_valid && entry.v1.ts <= read_ts &&
             read_ts < entry.v0.ts) {
    hit = &entry.v1;
  }
  if (hit == nullptr) {
    if (miss_counter_ != nullptr) miss_counter_->Add();
    return Result::kMiss;
  }
  if (hit_counter_ != nullptr) hit_counter_->Add();
  if (hit->deleted) return Result::kHitDeleted;
  *value = hit->value;
  if (version_ts != nullptr) *version_ts = hit->ts;
  return Result::kHit;
}

void BaseRowCache::Clear() { cache_.Clear(); }

}  // namespace diffindex
