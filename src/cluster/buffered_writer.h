// Client write buffer: the optimization the paper disables for its
// latency experiments ("for a fair comparison with sync-full, we turn off
// the client buffer") and credits for additional throughput ("the
// throughput of the system can be further optimized by enabling client
// buffer for update", Section 8.1/8.2).
//
// Puts accumulate client-side and ship in per-server multi-put RPCs,
// amortizing the network round trip. The trade: an acknowledged Add() is
// NOT durable until Flush() returns — exactly the semantics of HBase's
// client-side write buffer.

#ifndef DIFFINDEX_CLUSTER_BUFFERED_WRITER_H_
#define DIFFINDEX_CLUSTER_BUFFERED_WRITER_H_

#include <memory>
#include <string>
#include <vector>

#include "cluster/client.h"

namespace diffindex {

class BufferedWriter {
 public:
  // Auto-flushes whenever `flush_batch_size` puts accumulate.
  BufferedWriter(std::shared_ptr<Client> client, std::string table,
                 size_t flush_batch_size = 64)
      : client_(std::move(client)),
        table_(std::move(table)),
        flush_batch_size_(flush_batch_size) {}

  // Destructor flushes best-effort; call Flush() explicitly to observe
  // errors.
  // Destructor flush is best-effort (destructors cannot report); callers
  // that need the error must call Flush() themselves first.
  ~BufferedWriter() { Flush().IgnoreError(); }

  BufferedWriter(const BufferedWriter&) = delete;
  BufferedWriter& operator=(const BufferedWriter&) = delete;

  Status Add(const std::string& row, std::vector<Cell> cells) {
    buffer_.push_back(Client::RowPut{row, std::move(cells)});
    if (buffer_.size() >= flush_batch_size_) return Flush();
    return Status::OK();
  }

  Status AddColumn(const std::string& row, const std::string& column,
                   const std::string& value) {
    return Add(row, {Cell{column, value, false}});
  }

  Status Flush() {
    if (buffer_.empty()) return Status::OK();
    std::vector<Client::RowPut> batch;
    batch.swap(buffer_);
    return client_->MultiPut(table_, std::move(batch));
  }

  size_t pending() const { return buffer_.size(); }

 private:
  std::shared_ptr<Client> client_;
  const std::string table_;
  const size_t flush_batch_size_;
  std::vector<Client::RowPut> buffer_;
};

}  // namespace diffindex

#endif  // DIFFINDEX_CLUSTER_BUFFERED_WRITER_H_
