// StalenessProbe: live measurement of the Figure-11 quantity. The probe
// periodically writes a sentinel row whose indexed column carries a
// unique value, then polls getByIndex until the new value is visible
// through the index; the elapsed time is the index staleness an external
// reader actually observes. Under sync-full the entry is visible as soon
// as the put returns (~zero staleness); under async-simple/async-session
// the lag is the AUQ/APS drain delay, which grows with load.
//
// Unlike the AUQ-internal staleness histogram (T2 - T1 per task), the
// probe measures end-to-end through the real read path — index scan,
// routing, read-repair — so it also catches staleness a queue-local
// measurement cannot see (e.g. entries delayed inside retries).
//
// Results land in the registry:
//   probe.staleness_micros            aggregate distribution
//   probe.staleness_micros.<scheme>   tagged by the index's scheme
//   probe.cycles / probe.timeouts / probe.errors   counters
//   probe.last_staleness_micros       gauge (most recent sample)

#ifndef DIFFINDEX_OBS_STALENESS_PROBE_H_
#define DIFFINDEX_OBS_STALENESS_PROBE_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include "core/diff_index_client.h"
#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace diffindex {
namespace obs {

struct StalenessProbeOptions {
  // Table + index to probe through. The table should be dedicated to the
  // probe (sentinel rows are written continuously) and must have an index
  // named `index_name` over `column`.
  std::string table;
  std::string index_name;
  std::string column;

  // One probe cycle every period; 0 disables the background thread (the
  // caller drives ProbeOnce explicitly).
  int period_ms = 100;
  // Poll spacing while waiting for the index to show the sentinel.
  int poll_interval_ms = 1;
  // A cycle that hasn't observed its value after this long is abandoned
  // and counted in probe.timeouts (the sample would otherwise block the
  // probe forever on a wedged APS).
  int timeout_ms = 5000;

  std::string row_key = "__staleness_probe";
};

class StalenessProbe {
 public:
  // `client` must outlive the probe; `metrics` receives the results.
  StalenessProbe(DiffIndexClient* client, MetricsRegistry* metrics,
                 StalenessProbeOptions options);
  ~StalenessProbe();

  StalenessProbe(const StalenessProbe&) = delete;
  StalenessProbe& operator=(const StalenessProbe&) = delete;

  // Starts the background prober (no-op when period_ms == 0).
  Status Start();
  void Stop();

  // One synchronous probe cycle: write sentinel, poll until visible,
  // record. On success fills *staleness_micros (nullable).
  Status ProbeOnce(uint64_t* staleness_micros);

  uint64_t cycles() const { return cycles_.load(std::memory_order_relaxed); }

 private:
  void Loop();
  // Scheme tag of the probed index, resolved once ("" until resolvable).
  const std::string& SchemeTag();

  DiffIndexClient* const client_;
  MetricsRegistry* const metrics_;
  const StalenessProbeOptions options_;

  Mutex scheme_mu_;
  std::string scheme_tag_ GUARDED_BY(scheme_mu_);

  std::atomic<uint64_t> seq_{0};
  std::atomic<uint64_t> cycles_{0};
  // stop_ is atomic (ProbeOnce polls it lock-free mid-cycle); Stop() also
  // flips it under stop_mu_ so the Loop's timed wait cannot miss the
  // transition between its predicate check and going to sleep.
  std::atomic<bool> stop_{true};
  Mutex stop_mu_;
  CondVar stop_cv_;
  std::thread thread_;
};

}  // namespace obs
}  // namespace diffindex

#endif  // DIFFINDEX_OBS_STALENESS_PROBE_H_
