// Windowed latency-SLO accounting for sustained-load runs: latencies are
// bucketed into fixed wall-clock windows and each window reports its own
// p50/p99/p999, so a multi-second stall shows up as a spike in the
// time-series instead of being averaged away by a whole-run histogram
// (the failure mode the single-histogram WorkloadRunner result had).
//
// Windows with no completed operations are emitted too (count = 0): a
// closed-loop stall produces exactly such gaps, and a time-series with
// the gap windows missing would hide the stall it exists to expose.

#ifndef DIFFINDEX_OBS_SLO_H_
#define DIFFINDEX_OBS_SLO_H_

#include <cstdint>
#include <vector>

#include "obs/metrics.h"
#include "util/histogram.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace diffindex::obs {

// One closed window of the time-series. Times are micros relative to the
// caller's epoch (the runner uses its run start).
struct SloWindow {
  uint64_t start_micros = 0;
  uint64_t end_micros = 0;
  uint64_t operations = 0;
  uint64_t errors = 0;
  uint64_t p50_micros = 0;
  uint64_t p99_micros = 0;
  uint64_t p999_micros = 0;
  uint64_t max_micros = 0;
};

struct SloOptions {
  uint64_t window_micros = 1000000;
  // Per-window p99 objective; a non-empty window whose p99 exceeds it
  // counts into `slo.violations`. 0 disables violation accounting.
  uint64_t p99_target_micros = 0;
  // Optional registry sink: counters `slo.windows` / `slo.violations`,
  // histogram `slo.window_p99_micros` (distribution of per-window p99s —
  // a stall is visible as mass in the high buckets even after the run).
  MetricsRegistry* metrics = nullptr;
};

class SloTracker {
 public:
  explicit SloTracker(const SloOptions& options);

  // Records one completed operation. `now_micros` is monotonic time since
  // the caller's epoch; callers must not move it backwards across threads
  // by more than scheduling noise (late samples land in the open window).
  void RecordAt(uint64_t now_micros, uint64_t latency_micros, bool ok)
      EXCLUDES(mu_);

  // Closes every window through `end_micros` (gap windows included) and
  // returns the full series. The tracker can keep recording afterwards;
  // later Finish calls return the longer series.
  std::vector<SloWindow> Finish(uint64_t end_micros) EXCLUDES(mu_);

 private:
  // Closes windows until `now_micros` falls inside the open one.
  void RollWindowsLocked(uint64_t now_micros) REQUIRES(mu_);

  const SloOptions options_;
  Counter* windows_counter_ = nullptr;
  Counter* violations_counter_ = nullptr;
  Histogram* window_p99_hist_ = nullptr;

  // Leaf lock: Record does one histogram Add under it; percentile math
  // runs only on window boundaries.
  mutable Mutex mu_{LockRank::kLeaf, "slo.mu_"};
  uint64_t window_start_ GUARDED_BY(mu_) = 0;
  uint64_t window_errors_ GUARDED_BY(mu_) = 0;
  Histogram window_hist_;  // cleared on every roll, written under mu_
  std::vector<SloWindow> closed_ GUARDED_BY(mu_);
};

}  // namespace diffindex::obs

#endif  // DIFFINDEX_OBS_SLO_H_
