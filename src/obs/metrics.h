// MetricsRegistry: the process-wide observability hub — named counters,
// gauges and histograms, created on first use and alive for the registry's
// lifetime (instruments hold stable pointers, so the hot path is one
// relaxed atomic op with no lock and no lookup).
//
// Snapshots capture every instrument at a point in time; Delta() between
// two snapshots isolates one phase of a run (histogram deltas subtract
// bucket counts, so percentiles of the delta are exact). Exporters render
// a snapshot as aligned text (operators) or JSON (machines — the
// `--metrics-json` dump of the benches).
//
// Naming convention (see DESIGN.md "Observability"): dot-separated,
// lowercase, coarse-to-fine — `subsystem.metric[.tag]`, e.g.
// `span.client.put.async-simple`, `auq.staleness_micros`, `lsm.flush`.

#ifndef DIFFINDEX_OBS_METRICS_H_
#define DIFFINDEX_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/histogram.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace diffindex {
namespace obs {

class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n) { value_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Point-in-time copy of one histogram, carrying the raw bucket counts so
// deltas between snapshots still yield exact percentiles.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  std::vector<uint64_t> buckets;  // parallel to Histogram::BucketBounds

  double Average() const {
    return count == 0 ? 0 : static_cast<double>(sum) / static_cast<double>(count);
  }
  uint64_t Percentile(double p) const {
    return PercentileFromBuckets(buckets, count, min, max, p);
  }
};

struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  // This snapshot minus an earlier one: counters and histogram buckets
  // subtract (clamped at zero); gauges keep their current value (a gauge
  // is a level, not a rate). Histogram min/max are only known for the
  // union, so the delta conservatively reuses them.
  MetricsSnapshot Delta(const MetricsSnapshot& earlier) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create; the returned pointer stays valid for the registry's
  // lifetime. Thread-safe.
  Counter* GetCounter(const std::string& name) EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name) EXCLUDES(mu_);
  Histogram* GetHistogram(const std::string& name) EXCLUDES(mu_);

  MetricsSnapshot Snapshot() const EXCLUDES(mu_);

  // Exporters (convenience: snapshot + render).
  std::string ToText() const { return SnapshotToText(Snapshot()); }
  std::string ToJson() const { return SnapshotToJson(Snapshot()); }

  static std::string SnapshotToText(const MetricsSnapshot& snapshot);
  static std::string SnapshotToJson(const MetricsSnapshot& snapshot);

 private:
  // mu_ guards only the name->instrument maps; the instruments themselves
  // are lock-free (atomics) and outlive every cached pointer.
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mu_);
};

// Writes ToJson() of `snapshot` to `path` (the bench `--metrics-json`
// sink). Returns false on I/O failure.
bool WriteSnapshotJson(const MetricsSnapshot& snapshot,
                       const std::string& path);

// Minimal JSON string escaping for metric names (quotes, backslashes,
// control characters).
std::string JsonEscape(const std::string& s);

}  // namespace obs
}  // namespace diffindex

#endif  // DIFFINDEX_OBS_METRICS_H_
