#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace diffindex {
namespace obs {

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  MutexLock lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.count = histogram->Count();
    h.sum = histogram->Sum();
    h.min = histogram->Min();
    h.max = histogram->Max();
    histogram->GetBucketCounts(&h.buckets);
    snapshot.histograms[name] = std::move(h);
  }
  return snapshot;
}

MetricsSnapshot MetricsSnapshot::Delta(const MetricsSnapshot& earlier) const {
  MetricsSnapshot delta;
  for (const auto& [name, value] : counters) {
    auto it = earlier.counters.find(name);
    const uint64_t before = it == earlier.counters.end() ? 0 : it->second;
    delta.counters[name] = value > before ? value - before : 0;
  }
  delta.gauges = gauges;
  for (const auto& [name, h] : histograms) {
    auto it = earlier.histograms.find(name);
    if (it == earlier.histograms.end()) {
      delta.histograms[name] = h;
      continue;
    }
    const HistogramSnapshot& before = it->second;
    HistogramSnapshot d;
    d.count = h.count > before.count ? h.count - before.count : 0;
    d.sum = h.sum > before.sum ? h.sum - before.sum : 0;
    d.min = h.min;
    d.max = h.max;
    d.buckets.resize(h.buckets.size());
    for (size_t i = 0; i < h.buckets.size(); i++) {
      const uint64_t b = i < before.buckets.size() ? before.buckets[i] : 0;
      d.buckets[i] = h.buckets[i] > b ? h.buckets[i] - b : 0;
    }
    delta.histograms[name] = std::move(d);
  }
  return delta;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string MetricsRegistry::SnapshotToText(const MetricsSnapshot& snapshot) {
  std::ostringstream oss;
  for (const auto& [name, value] : snapshot.counters) {
    oss << name << " = " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    oss << name << " = " << value << "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    oss << name << ": count=" << h.count << " avg=" << h.Average()
        << " min=" << h.min << " p50=" << h.Percentile(50)
        << " p95=" << h.Percentile(95) << " p99=" << h.Percentile(99)
        << " max=" << h.max << "\n";
  }
  return oss.str();
}

std::string MetricsRegistry::SnapshotToJson(const MetricsSnapshot& snapshot) {
  std::ostringstream oss;
  oss << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) oss << ",";
    first = false;
    oss << "\"" << JsonEscape(name) << "\":" << value;
  }
  oss << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) oss << ",";
    first = false;
    oss << "\"" << JsonEscape(name) << "\":" << value;
  }
  oss << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    if (!first) oss << ",";
    first = false;
    oss << "\"" << JsonEscape(name) << "\":{"
        << "\"count\":" << h.count << ",\"sum\":" << h.sum
        << ",\"avg\":" << h.Average() << ",\"min\":" << h.min
        << ",\"p50\":" << h.Percentile(50)
        << ",\"p95\":" << h.Percentile(95)
        << ",\"p99\":" << h.Percentile(99) << ",\"max\":" << h.max << "}";
  }
  oss << "}}";
  return oss.str();
}

bool WriteSnapshotJson(const MetricsSnapshot& snapshot,
                       const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = MetricsRegistry::SnapshotToJson(snapshot);
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = written == json.size() && std::fclose(f) == 0;
  if (!ok && written != json.size()) std::fclose(f);
  return ok;
}

}  // namespace obs
}  // namespace diffindex
