#include "obs/trace.h"

#include <algorithm>
#include <sstream>

#include "util/coding.h"
#include "util/timestamp_oracle.h"

namespace diffindex {
namespace obs {

namespace {

thread_local TraceContext t_current;

uint64_t NextId() {
  // Process-unique, monotone, never 0. Seeded from the wall clock so ids
  // from successive processes over the same data don't collide.
  static std::atomic<uint64_t> counter{TimestampOracle::NowMicros() << 16};
  return counter.fetch_add(1, std::memory_order_relaxed) | 1;
}

}  // namespace

TraceContext TraceContext::NewRoot(std::string op, std::string scheme) {
  TraceContext ctx;
  ctx.trace_id = NextId();
  ctx.span_id = NextId();
  ctx.op = std::move(op);
  ctx.scheme = std::move(scheme);
  return ctx;
}

TraceContext TraceContext::Child() const {
  TraceContext child = *this;
  child.parent_span_id = span_id;
  child.span_id = NextId();
  return child;
}

void TraceContext::EncodeTo(std::string* out) const {
  PutVarint64(out, trace_id);
  PutVarint64(out, span_id);
  PutVarint64(out, parent_span_id);
  PutLengthPrefixedSlice(out, op);
  PutLengthPrefixedSlice(out, scheme);
}

bool TraceContext::DecodeFrom(Slice* in, TraceContext* ctx) {
  return GetVarint64(in, &ctx->trace_id) && GetVarint64(in, &ctx->span_id) &&
         GetVarint64(in, &ctx->parent_span_id) &&
         GetLengthPrefixedString(in, &ctx->op) &&
         GetLengthPrefixedString(in, &ctx->scheme);
}

const TraceContext& CurrentTraceContext() { return t_current; }

ScopedTraceContext::ScopedTraceContext(TraceContext ctx)
    : saved_(std::move(t_current)) {
  t_current = std::move(ctx);
}

ScopedTraceContext::~ScopedTraceContext() { t_current = std::move(saved_); }

void TraceCollector::Record(SpanRecord span) {
  MutexLock lock(mu_);
  spans_.push_back(std::move(span));
  while (spans_.size() > capacity_) spans_.pop_front();
}

std::vector<SpanRecord> TraceCollector::Trace(uint64_t trace_id) const {
  std::vector<SpanRecord> result;
  {
    MutexLock lock(mu_);
    for (const SpanRecord& span : spans_) {
      if (span.trace_id == trace_id) result.push_back(span);
    }
  }
  std::sort(result.begin(), result.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_micros < b.start_micros;
            });
  return result;
}

std::vector<SpanRecord> TraceCollector::AllSpans() const {
  MutexLock lock(mu_);
  return std::vector<SpanRecord>(spans_.begin(), spans_.end());
}

size_t TraceCollector::size() const {
  MutexLock lock(mu_);
  return spans_.size();
}

void TraceCollector::Clear() {
  MutexLock lock(mu_);
  spans_.clear();
}

std::string TraceCollector::Dump(uint64_t trace_id) const {
  const std::vector<SpanRecord> spans = Trace(trace_id);
  std::ostringstream oss;
  oss << "trace " << trace_id << " (" << spans.size() << " spans)\n";
  for (const SpanRecord& span : spans) {
    // Indent children one level under their parent (flat heuristic: a
    // span with a parent in this trace indents once per ancestor found).
    int depth = 0;
    uint64_t parent = span.parent_span_id;
    while (parent != 0) {
      depth++;
      uint64_t next = 0;
      for (const SpanRecord& candidate : spans) {
        if (candidate.span_id == parent) {
          next = candidate.parent_span_id;
          break;
        }
      }
      if (next == parent) break;
      parent = next;
      if (depth > 16) break;  // defensive: malformed parent chain
    }
    for (int i = 0; i < depth; i++) oss << "  ";
    oss << span.name;
    if (!span.scheme.empty()) oss << " [" << span.scheme << "]";
    oss << " " << span.duration_micros << "us (span " << span.span_id
        << ")\n";
  }
  return oss.str();
}

SpanTimer::SpanTimer(MetricsRegistry* metrics, TraceCollector* collector,
                     std::string name)
    : metrics_(metrics),
      collector_(collector),
      name_(std::move(name)),
      ctx_(CurrentTraceContext()),
      start_(std::chrono::steady_clock::now()),
      start_wall_micros_(TimestampOracle::NowMicros()) {}

uint64_t SpanTimer::ElapsedMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

SpanTimer::~SpanTimer() {
  const uint64_t elapsed = ElapsedMicros();
  if (metrics_ != nullptr) {
    std::string metric = "span." + name_;
    if (!ctx_.scheme.empty()) metric += "." + ctx_.scheme;
    metrics_->GetHistogram(metric)->Add(elapsed);
  }
  if (collector_ != nullptr && ctx_.active()) {
    SpanRecord record;
    record.trace_id = ctx_.trace_id;
    record.span_id = ctx_.span_id;
    record.parent_span_id = ctx_.parent_span_id;
    record.name = name_;
    record.scheme = ctx_.scheme;
    record.start_micros = start_wall_micros_;
    record.duration_micros = elapsed;
    collector_->Record(std::move(record));
  }
}

}  // namespace obs
}  // namespace diffindex
