// Lightweight cross-node request tracing. A TraceContext (trace id, span
// id, parent span, op type, scheme tag) is created at the client API
// boundary, carried in-band through the Fabric's wire framing (encoded
// and decoded like any other message field — the same bytes a real
// network would ship), and re-installed thread-locally on the serving
// side. Every instrumented stage opens a SpanTimer, which records its
// duration into a MetricsRegistry histogram (`span.<name>[.<scheme>]`)
// and, when a TraceCollector is attached, appends a finished-span record
// so one request can be followed client -> region server -> AUQ/APS.
//
// Tracing is zero-cost when off: with no ambient context, contexts encode
// as five varint zeros and SpanTimer degrades to a steady_clock read.

#ifndef DIFFINDEX_OBS_TRACE_H_
#define DIFFINDEX_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/slice.h"
#include "util/thread_annotations.h"

namespace diffindex {
namespace obs {

struct TraceContext {
  uint64_t trace_id = 0;  // 0 = not traced
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  std::string op;      // client-level operation ("put", "get_by_index", ...)
  std::string scheme;  // index maintenance scheme tag ("sync-full", ...)

  bool active() const { return trace_id != 0; }

  // Fresh root context with new trace and span ids.
  static TraceContext NewRoot(std::string op, std::string scheme);
  // Child of this context: same trace/op/scheme, new span id, parent set
  // to this span. Used per network hop and per handoff into the AUQ.
  TraceContext Child() const;

  void EncodeTo(std::string* out) const;
  static bool DecodeFrom(Slice* in, TraceContext* ctx);
};

// The calling thread's ambient context (inactive default if none).
const TraceContext& CurrentTraceContext();

// Installs `ctx` as the thread's ambient context for this scope.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext ctx);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

// One completed span, as kept by the TraceCollector.
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  std::string name;
  std::string scheme;
  uint64_t start_micros = 0;  // wall clock, for cross-span ordering
  uint64_t duration_micros = 0;
};

// Bounded ring of recently finished spans (newest kept, oldest evicted).
class TraceCollector {
 public:
  explicit TraceCollector(size_t capacity = 4096) : capacity_(capacity) {}

  void Record(SpanRecord span) EXCLUDES(mu_);
  // All retained spans of one trace, in start order.
  std::vector<SpanRecord> Trace(uint64_t trace_id) const EXCLUDES(mu_);
  std::vector<SpanRecord> AllSpans() const EXCLUDES(mu_);
  size_t size() const EXCLUDES(mu_);
  void Clear() EXCLUDES(mu_);

  // Human-readable rendering of one trace (indented by parent/child).
  std::string Dump(uint64_t trace_id) const;

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  std::deque<SpanRecord> spans_ GUARDED_BY(mu_);
};

// RAII span: measures from construction to destruction. Records into
// `metrics` histogram `span.<name>` — or `span.<name>.<scheme>` when the
// ambient context carries a scheme tag — and into `collector` when the
// ambient context is active. Either sink may be null.
class SpanTimer {
 public:
  SpanTimer(MetricsRegistry* metrics, TraceCollector* collector,
            std::string name);
  ~SpanTimer();

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

  // Duration so far; also what the destructor will record.
  uint64_t ElapsedMicros() const;

 private:
  MetricsRegistry* const metrics_;
  TraceCollector* const collector_;
  const std::string name_;
  const TraceContext ctx_;  // ambient context at construction
  const std::chrono::steady_clock::time_point start_;
  const uint64_t start_wall_micros_;
};

}  // namespace obs
}  // namespace diffindex

#endif  // DIFFINDEX_OBS_TRACE_H_
