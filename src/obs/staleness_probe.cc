#include "obs/staleness_probe.h"

#include <chrono>

#include "obs/trace.h"
#include "util/timestamp_oracle.h"

namespace diffindex {
namespace obs {

namespace {
using Clock = std::chrono::steady_clock;

uint64_t MicrosSince(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            start)
          .count());
}
}  // namespace

StalenessProbe::StalenessProbe(DiffIndexClient* client,
                               MetricsRegistry* metrics,
                               StalenessProbeOptions options)
    : client_(client), metrics_(metrics), options_(std::move(options)) {}

StalenessProbe::~StalenessProbe() { Stop(); }

const std::string& StalenessProbe::SchemeTag() {
  MutexLock lock(scheme_mu_);
  if (scheme_tag_.empty()) {
    IndexDescriptor index;
    if (client_->reader()
            ->FindIndex(options_.table, options_.index_name, &index)
            .ok()) {
      scheme_tag_ = IndexSchemeName(index.scheme);
    }
  }
  return scheme_tag_;
}

Status StalenessProbe::ProbeOnce(uint64_t* staleness_micros) {
  const uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  // Unique per cycle AND per process run (probe tables survive restarts).
  const std::string sentinel = "probe-" +
                               std::to_string(TimestampOracle::NowMicros()) +
                               "-" + std::to_string(seq);

  const std::string& scheme = SchemeTag();
  ScopedTraceContext trace(TraceContext::NewRoot("staleness_probe", scheme));

  const auto start = Clock::now();
  Status s = client_->Put(options_.table, options_.row_key,
                          {Cell{options_.column, sentinel, false}});
  if (!s.ok()) {
    metrics_->GetCounter("probe.errors")->Add();
    return s;
  }

  const uint64_t timeout_micros =
      static_cast<uint64_t>(options_.timeout_ms) * 1000;
  for (;;) {
    std::vector<IndexHit> hits;
    s = client_->GetByIndex(options_.table, options_.index_name, sentinel,
                            &hits);
    if (!s.ok()) {
      metrics_->GetCounter("probe.errors")->Add();
      return s;
    }
    bool visible = false;
    for (const IndexHit& hit : hits) {
      if (hit.base_row == options_.row_key) {
        visible = true;
        break;
      }
    }
    if (visible) break;
    if (MicrosSince(start) > timeout_micros) {
      metrics_->GetCounter("probe.timeouts")->Add();
      return Status::Aborted("staleness probe timed out waiting for index");
    }
    if (stop_.load(std::memory_order_relaxed) && thread_.joinable()) {
      // Background prober was asked to stop mid-cycle; abandon quietly.
      return Status::Aborted("staleness probe stopped");
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.poll_interval_ms));
  }

  const uint64_t staleness = MicrosSince(start);
  metrics_->GetHistogram("probe.staleness_micros")->Add(staleness);
  if (!scheme.empty()) {
    metrics_->GetHistogram("probe.staleness_micros." + scheme)
        ->Add(staleness);
  }
  metrics_->GetGauge("probe.last_staleness_micros")
      ->Set(static_cast<int64_t>(staleness));
  metrics_->GetCounter("probe.cycles")->Add();
  cycles_.fetch_add(1, std::memory_order_relaxed);
  if (staleness_micros != nullptr) *staleness_micros = staleness;
  return Status::OK();
}

Status StalenessProbe::Start() {
  if (options_.period_ms <= 0) return Status::OK();
  if (thread_.joinable()) {
    return Status::InvalidArgument("staleness probe already started");
  }
  stop_.store(false);
  thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void StalenessProbe::Stop() {
  {
    MutexLock lock(stop_mu_);
    stop_.store(true);
  }
  stop_cv_.SignalAll();
  if (thread_.joinable()) thread_.join();
}

void StalenessProbe::Loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    // Sample failures are expected mid-chaos (routing errors, timeouts);
    // they are already counted under probe.errors/probe.timeouts.
    ProbeOnce(nullptr).IgnoreError();
    MutexLock lock(stop_mu_);
    stop_cv_.WaitFor(stop_mu_, std::chrono::milliseconds(options_.period_ms),
                     [this] { return stop_.load(); });
  }
}

}  // namespace obs
}  // namespace diffindex
