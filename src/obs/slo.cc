#include "obs/slo.h"

namespace diffindex::obs {

SloTracker::SloTracker(const SloOptions& options) : options_(options) {
  if (options_.metrics != nullptr) {
    windows_counter_ = options_.metrics->GetCounter("slo.windows");
    violations_counter_ = options_.metrics->GetCounter("slo.violations");
    window_p99_hist_ =
        options_.metrics->GetHistogram("slo.window_p99_micros");
  }
}

void SloTracker::RollWindowsLocked(uint64_t now_micros) {
  const uint64_t width = options_.window_micros;
  while (now_micros >= window_start_ + width) {
    SloWindow window;
    window.start_micros = window_start_;
    window.end_micros = window_start_ + width;
    window.operations = window_hist_.Count();
    window.errors = window_errors_;
    if (window.operations > 0) {
      window.p50_micros = window_hist_.Percentile(50);
      window.p99_micros = window_hist_.Percentile(99);
      window.p999_micros = window_hist_.Percentile(99.9);
      window.max_micros = window_hist_.Max();
      if (window_p99_hist_ != nullptr) {
        window_p99_hist_->Add(window.p99_micros);
      }
      if (options_.p99_target_micros > 0 &&
          window.p99_micros > options_.p99_target_micros &&
          violations_counter_ != nullptr) {
        violations_counter_->Add();
      }
    }
    if (windows_counter_ != nullptr) windows_counter_->Add();
    closed_.push_back(window);
    window_hist_.Clear();
    window_errors_ = 0;
    window_start_ += width;
  }
}

void SloTracker::RecordAt(uint64_t now_micros, uint64_t latency_micros,
                          bool ok) {
  MutexLock lock(mu_);
  RollWindowsLocked(now_micros);
  window_hist_.Add(latency_micros);
  if (!ok) window_errors_++;
}

std::vector<SloWindow> SloTracker::Finish(uint64_t end_micros) {
  MutexLock lock(mu_);
  RollWindowsLocked(end_micros);
  if (end_micros > window_start_) {
    // end_micros fell mid-window: force the partial tail closed too (it
    // still carries its stall evidence). An end exactly on a boundary
    // adds nothing.
    RollWindowsLocked(window_start_ + options_.window_micros);
  }
  return closed_;
}

}  // namespace diffindex::obs
