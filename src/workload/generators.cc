#include "workload/generators.h"

#include <algorithm>

namespace diffindex {

namespace {

class UniformChooser final : public KeyChooser {
 public:
  UniformChooser(uint64_t num_items, uint64_t seed)
      : num_items_(num_items), rng_(seed) {}
  uint64_t Next() override { return rng_.Uniform(num_items_); }

 private:
  uint64_t num_items_;
  Random rng_;
};

class ZipfianChooser final : public KeyChooser {
 public:
  ZipfianChooser(uint64_t num_items, uint64_t seed)
      : zipf_(num_items, seed) {}
  uint64_t Next() override { return zipf_.Next(); }

 private:
  ScrambledZipfianGenerator zipf_;
};

class HotspotChooser final : public KeyChooser {
 public:
  HotspotChooser(uint64_t num_items, uint64_t seed,
                 double set_fraction, double op_fraction)
      : num_items_(num_items),
        hot_items_(std::min(
            num_items,
            std::max<uint64_t>(
                1, static_cast<uint64_t>(static_cast<double>(num_items) *
                                         set_fraction)))),
        op_per_million_(static_cast<uint64_t>(
            std::clamp(op_fraction, 0.0, 1.0) * 1000000.0)),
        rng_(seed) {}

  uint64_t Next() override {
    if (rng_.Uniform(1000000) < op_per_million_ ||
        hot_items_ == num_items_) {
      return rng_.Uniform(hot_items_);
    }
    return hot_items_ + rng_.Uniform(num_items_ - hot_items_);
  }

 private:
  uint64_t num_items_;
  uint64_t hot_items_;
  uint64_t op_per_million_;
  Random rng_;
};

class LatestChooser final : public KeyChooser {
 public:
  LatestChooser(uint64_t num_items, uint64_t seed,
                const std::atomic<uint64_t>* recency)
      : num_items_(num_items), recency_(recency), zipf_(num_items, seed) {}

  uint64_t Next() override {
    // Zipfian offset back from the recency cursor, wrapping over the key
    // space: offset 0 is the most recently written key.
    const uint64_t offset = zipf_.Next() % num_items_;
    const uint64_t edge =
        recency_ != nullptr
            ? recency_->load(std::memory_order_relaxed) % num_items_
            : num_items_ - 1;
    return (edge + num_items_ - offset) % num_items_;
  }

 private:
  uint64_t num_items_;
  const std::atomic<uint64_t>* recency_;
  ZipfianGenerator zipf_;
};

}  // namespace

std::unique_ptr<KeyChooser> KeyChooser::Create(
    KeyDistribution dist, uint64_t num_items, uint64_t seed,
    const KeyChooserParams& params) {
  switch (dist) {
    case KeyDistribution::kZipfian:
      return std::make_unique<ZipfianChooser>(num_items, seed);
    case KeyDistribution::kHotspot:
      return std::make_unique<HotspotChooser>(num_items, seed,
                                              params.hotspot_set_fraction,
                                              params.hotspot_op_fraction);
    case KeyDistribution::kLatest:
      return std::make_unique<LatestChooser>(num_items, seed,
                                             params.recency);
    case KeyDistribution::kUniform:
      break;
  }
  return std::make_unique<UniformChooser>(num_items, seed);
}

}  // namespace diffindex
