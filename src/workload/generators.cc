#include "workload/generators.h"

namespace diffindex {

namespace {

class UniformChooser final : public KeyChooser {
 public:
  UniformChooser(uint64_t num_items, uint64_t seed)
      : num_items_(num_items), rng_(seed) {}
  uint64_t Next() override { return rng_.Uniform(num_items_); }

 private:
  uint64_t num_items_;
  Random rng_;
};

class ZipfianChooser final : public KeyChooser {
 public:
  ZipfianChooser(uint64_t num_items, uint64_t seed)
      : zipf_(num_items, seed) {}
  uint64_t Next() override { return zipf_.Next(); }

 private:
  ScrambledZipfianGenerator zipf_;
};

}  // namespace

std::unique_ptr<KeyChooser> KeyChooser::Create(KeyDistribution dist,
                                               uint64_t num_items,
                                               uint64_t seed) {
  if (dist == KeyDistribution::kZipfian) {
    return std::make_unique<ZipfianChooser>(num_items, seed);
  }
  return std::make_unique<UniformChooser>(num_items, seed);
}

}  // namespace diffindex
