// The extended-YCSB `item` table of Section 8.1: each row has a unique
// item id as rowkey and 10 columns; `item_title` and `item_price` are
// indexed, the other 8 columns carry 100-byte random filler. Row keys are
// hex-hashed so they spread uniformly over the region split points.

#ifndef DIFFINDEX_WORKLOAD_ITEM_TABLE_H_
#define DIFFINDEX_WORKLOAD_ITEM_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "util/random.h"

namespace diffindex {

struct ItemTableOptions {
  std::string table = "item";
  uint64_t num_items = 10000;
  int filler_columns = 8;
  size_t filler_bytes = 100;
  // Price domain [0, price_domain); selectivity s targets a range of
  // width s * price_domain.
  uint64_t price_domain = 1000000;
  IndexScheme title_scheme = IndexScheme::kSyncFull;
  IndexScheme price_scheme = IndexScheme::kSyncFull;
  bool create_title_index = true;
  bool create_price_index = true;
};

class ItemTable {
 public:
  ItemTable(Cluster* cluster, const ItemTableOptions& options)
      : cluster_(cluster), options_(options) {}

  // Creates the table + indexes.
  Status Create();

  // Loads num_items rows (single-threaded helper; the runner has a
  // multi-threaded load).
  Status Load(Client* client);

  // Row key of item `id`: 16 hex digits of a mixed hash.
  std::string RowKey(uint64_t id) const;

  // Deterministic title of the item's current version; version 0 is the
  // loaded value, updates bump the version.
  std::string TitleValue(uint64_t id, uint64_t version) const;

  // Encoded (order-preserving) price drawn deterministically per item and
  // version.
  std::string PriceValue(uint64_t id, uint64_t version) const;
  uint64_t PriceNumeric(uint64_t id, uint64_t version) const;

  // All 10 columns of one item at a version.
  std::vector<Cell> MakeRow(uint64_t id, uint64_t version,
                            Random* rng) const;

  const ItemTableOptions& options() const { return options_; }
  static constexpr char kTitleColumn[] = "item_title";
  static constexpr char kPriceColumn[] = "item_price";
  static constexpr char kTitleIndex[] = "by_item_title";
  static constexpr char kPriceIndex[] = "by_item_price";

 private:
  Cluster* const cluster_;
  const ItemTableOptions options_;
};

}  // namespace diffindex

#endif  // DIFFINDEX_WORKLOAD_ITEM_TABLE_H_
