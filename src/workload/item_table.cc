#include "workload/item_table.h"

#include <cstdio>

#include "core/index_codec.h"

namespace diffindex {

namespace {

uint64_t Mix64(uint64_t x) {
  // SplitMix64 finalizer: uniform, invertible.
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

}  // namespace

Status ItemTable::Create() {
  DIFFINDEX_RETURN_NOT_OK(cluster_->master()->CreateTable(options_.table));
  if (options_.create_title_index) {
    IndexDescriptor title_index;
    title_index.name = kTitleIndex;
    title_index.column = kTitleColumn;
    title_index.scheme = options_.title_scheme;
    DIFFINDEX_RETURN_NOT_OK(
        cluster_->master()->CreateIndex(options_.table, title_index));
  }
  if (options_.create_price_index) {
    IndexDescriptor price_index;
    price_index.name = kPriceIndex;
    price_index.column = kPriceColumn;
    price_index.scheme = options_.price_scheme;
    DIFFINDEX_RETURN_NOT_OK(
        cluster_->master()->CreateIndex(options_.table, price_index));
  }
  return Status::OK();
}

std::string ItemTable::RowKey(uint64_t id) const {
  char buf[20];
  snprintf(buf, sizeof(buf), "%016llx",
           static_cast<unsigned long long>(Mix64(id + 1)));
  return buf;
}

std::string ItemTable::TitleValue(uint64_t id, uint64_t version) const {
  return "title_" + std::to_string(id) + "_v" + std::to_string(version);
}

uint64_t ItemTable::PriceNumeric(uint64_t id, uint64_t version) const {
  return Mix64(id * 2654435761ull + version) % options_.price_domain;
}

std::string ItemTable::PriceValue(uint64_t id, uint64_t version) const {
  return EncodeUint64IndexValue(PriceNumeric(id, version));
}

std::vector<Cell> ItemTable::MakeRow(uint64_t id, uint64_t version,
                                     Random* rng) const {
  std::vector<Cell> cells;
  cells.reserve(2 + options_.filler_columns);
  cells.push_back(Cell{kTitleColumn, TitleValue(id, version), false});
  cells.push_back(Cell{kPriceColumn, PriceValue(id, version), false});
  for (int i = 0; i < options_.filler_columns; i++) {
    cells.push_back(Cell{"field" + std::to_string(i),
                         rng->RandomBytes(options_.filler_bytes), false});
  }
  return cells;
}

Status ItemTable::Load(Client* client) {
  Random rng(42);
  for (uint64_t id = 0; id < options_.num_items; id++) {
    DIFFINDEX_RETURN_NOT_OK(
        client->Put(options_.table, RowKey(id), MakeRow(id, 0, &rng)));
  }
  return Status::OK();
}

}  // namespace diffindex
