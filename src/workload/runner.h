// Closed-loop workload driver (the YCSB stand-in of Section 8.1): N
// client threads each continuously submit requests — "a completed request
// will be followed up by another one immediately" — optionally paced to a
// target transaction rate (Figure 11 sweeps TPS directly). Latencies are
// recorded per operation into histograms.

#ifndef DIFFINDEX_WORKLOAD_RUNNER_H_
#define DIFFINDEX_WORKLOAD_RUNNER_H_

#include <atomic>
#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "util/histogram.h"
#include "workload/generators.h"
#include "workload/item_table.h"

namespace diffindex {

enum class WorkloadOp {
  kUpdateTitle,     // write a new item_title version (1 indexed column)
  kUpdateFullRow,   // rewrite the whole ~1 KB row (flush-pressure load)
  kReadIndexExact,  // getByIndex(item_title == current title): 1 row
  kRangeIndexPrice, // range query over the item_price index
  kBasePutNoIndex,  // raw base put (the "no-index" baseline of Figure 7)
  kScanIndexRange,  // paged scatter-gather scan over the item_price index
                    // through the read engine (query/engine.h)
  kScanTableRange,  // bounded base-table row scan across region boundaries
};

struct RunnerOptions {
  WorkloadOp op = WorkloadOp::kUpdateTitle;
  int threads = 4;
  // Stop after this many total operations (whichever of ops/duration is
  // hit first; 0 disables that bound).
  uint64_t total_operations = 10000;
  uint64_t max_duration_ms = 0;
  KeyDistribution distribution = KeyDistribution::kUniform;
  // 0 = closed loop at full speed; otherwise pace to ~this many
  // transactions per second across all threads.
  double target_tps = 0;
  // Price-range width for kRangeIndexPrice / kScanIndexRange
  // (selectivity = width / price_domain).
  uint64_t price_range_width = 1000;
  // kScanIndexRange knobs, mapped onto ScanOptions (query/engine.h).
  uint32_t scan_page_entries = 128;
  int scan_parallel = 4;
  bool scan_covered = false;
  bool scan_batched_repair = true;
  // Rows per kScanTableRange scan.
  uint32_t scan_rows = 64;
  uint64_t seed = 1;
};

struct RunnerResult {
  uint64_t operations = 0;
  uint64_t errors = 0;
  double elapsed_seconds = 0;
  double tps = 0;
  std::unique_ptr<Histogram> latency = std::make_unique<Histogram>();
};

class WorkloadRunner {
 public:
  WorkloadRunner(Cluster* cluster, const ItemTable* items,
                 const RunnerOptions& options)
      : cluster_(cluster), items_(items), options_(options) {}

  // Multi-threaded load of the item table (version 0 rows).
  Status LoadItems(int load_threads = 8);

  // Runs the configured operation mix; fills *result.
  Status Run(RunnerResult* result) { return RunWith(options_, result); }

  // Runs with override options but the same item-version state (e.g. an
  // update pass followed by a read pass against the updated titles).
  Status RunWith(const RunnerOptions& options, RunnerResult* result);

  // Current title version of an item (used by readers to form exact-match
  // predicates that actually hit).
  uint64_t ItemVersion(uint64_t id) const {
    return versions_[id].load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop(const RunnerOptions& options, int worker_id,
                  RunnerResult* result);

  Cluster* const cluster_;
  const ItemTable* const items_;
  const RunnerOptions options_;

  std::vector<std::atomic<uint64_t>> versions_;
  std::atomic<uint64_t> issued_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace diffindex

#endif  // DIFFINDEX_WORKLOAD_RUNNER_H_
