// Closed-loop workload driver (the YCSB stand-in of Section 8.1): N
// client threads each continuously submit requests — "a completed request
// will be followed up by another one immediately" — optionally paced to a
// target transaction rate (Figure 11 sweeps TPS directly). Latencies are
// recorded per operation into histograms, and (windowed) into a per-run
// SLO time-series so sustained-load stalls stay visible (obs/slo.h).

#ifndef DIFFINDEX_WORKLOAD_RUNNER_H_
#define DIFFINDEX_WORKLOAD_RUNNER_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "obs/slo.h"
#include "util/histogram.h"
#include "workload/generators.h"
#include "workload/item_table.h"

namespace diffindex {

class DiffIndexClient;
class ReadEngine;

enum class WorkloadOp {
  kUpdateTitle,     // write a new item_title version (1 indexed column)
  kUpdateFullRow,   // rewrite the whole ~1 KB row (flush-pressure load)
  kReadIndexExact,  // getByIndex(item_title == current title): 1 row
  kRangeIndexPrice, // range query over the item_price index
  kBasePutNoIndex,  // raw base put (the "no-index" baseline of Figure 7)
  kScanIndexRange,  // paged scatter-gather scan over the item_price index
                    // through the read engine (query/engine.h)
  kScanTableRange,  // bounded base-table row scan across region boundaries
};

struct RunnerOptions {
  WorkloadOp op = WorkloadOp::kUpdateTitle;
  // Mixed mode: when non-empty, every iteration draws its operation from
  // this weighted mix and `op` is ignored (YCSB-style read/write/scan
  // blends for the sustained-load harness).
  struct MixEntry {
    WorkloadOp op = WorkloadOp::kUpdateTitle;
    double weight = 1.0;
  };
  std::vector<MixEntry> mix;
  int threads = 4;
  // Stop after this many total operations (whichever of ops/duration is
  // hit first; 0 disables that bound).
  uint64_t total_operations = 10000;
  uint64_t max_duration_ms = 0;
  KeyDistribution distribution = KeyDistribution::kUniform;
  // kHotspot shape (see workload/generators.h).
  double hotspot_set_fraction = 0.2;
  double hotspot_op_fraction = 0.8;
  // 0 = closed loop at full speed; otherwise pace to ~this many
  // transactions per second across all threads.
  double target_tps = 0;
  // SLO time-series window; 0 disables windowing (RunnerResult.windows
  // stays empty and only the whole-run histogram is filled — the old,
  // stall-masking behavior, kept for micro-runs shorter than a window).
  uint64_t slo_window_micros = 1000000;
  // Per-window p99 objective fed to the SLO tracker (`slo.violations`);
  // 0 = track the series without judging it.
  uint64_t slo_p99_target_micros = 0;
  // Price-range width for kRangeIndexPrice / kScanIndexRange
  // (selectivity = width / price_domain).
  uint64_t price_range_width = 1000;
  // kScanIndexRange knobs, mapped onto ScanOptions (query/engine.h).
  uint32_t scan_page_entries = 128;
  int scan_parallel = 4;
  bool scan_covered = false;
  bool scan_batched_repair = true;
  // Rows per kScanTableRange scan.
  uint32_t scan_rows = 64;
  uint64_t seed = 1;
};

struct RunnerResult {
  uint64_t operations = 0;
  uint64_t errors = 0;
  double elapsed_seconds = 0;
  double tps = 0;
  std::unique_ptr<Histogram> latency = std::make_unique<Histogram>();
  // Windowed latency time-series (empty when slo_window_micros == 0):
  // per-window p50/p99/p999, so stalls are not averaged away by the
  // whole-run histogram above.
  std::vector<obs::SloWindow> windows;
};

class WorkloadRunner {
 public:
  WorkloadRunner(Cluster* cluster, const ItemTable* items,
                 const RunnerOptions& options)
      : cluster_(cluster), items_(items), options_(options) {}

  // Multi-threaded load of the item table (version 0 rows).
  Status LoadItems(int load_threads = 8);

  // Runs the configured operation mix; fills *result.
  Status Run(RunnerResult* result) { return RunWith(options_, result); }

  // Runs with override options but the same item-version state (e.g. an
  // update pass followed by a read pass against the updated titles).
  Status RunWith(const RunnerOptions& options, RunnerResult* result);

  // Current title version of an item (used by readers to form exact-match
  // predicates that actually hit).
  uint64_t ItemVersion(uint64_t id) const {
    return versions_[id].load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop(const RunnerOptions& options, int worker_id,
                  RunnerResult* result, obs::SloTracker* slo,
                  std::chrono::steady_clock::time_point run_start);
  // Executes one operation against the cluster; advances the item-version
  // and recency state for write ops.
  Status ExecuteOneOp(WorkloadOp op, uint64_t id,
                      const RunnerOptions& options, Client* raw_client,
                      DiffIndexClient* client, ReadEngine* engine,
                      Random* rng);

  Cluster* const cluster_;
  const ItemTable* const items_;
  const RunnerOptions options_;

  std::vector<std::atomic<uint64_t>> versions_;
  // Write cursor for the kLatest chooser: advanced once per completed
  // write op; the chooser skews draws toward keys just "behind" it.
  std::atomic<uint64_t> recency_{0};
  std::atomic<uint64_t> issued_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace diffindex

#endif  // DIFFINDEX_WORKLOAD_RUNNER_H_
