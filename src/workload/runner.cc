#include "workload/runner.h"

#include <chrono>
#include <thread>

#include "core/index_codec.h"
#include "query/engine.h"

namespace diffindex {

namespace {
using Clock = std::chrono::steady_clock;

uint64_t MicrosSince(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            start)
          .count());
}

const char* WorkloadOpName(WorkloadOp op) {
  switch (op) {
    case WorkloadOp::kUpdateTitle:
      return "update_title";
    case WorkloadOp::kUpdateFullRow:
      return "update_full_row";
    case WorkloadOp::kReadIndexExact:
      return "read_index_exact";
    case WorkloadOp::kRangeIndexPrice:
      return "range_index_price";
    case WorkloadOp::kBasePutNoIndex:
      return "base_put_no_index";
    case WorkloadOp::kScanIndexRange:
      return "scan_index_range";
    case WorkloadOp::kScanTableRange:
      return "scan_table_range";
  }
  return "unknown";
}
}  // namespace

Status WorkloadRunner::LoadItems(int load_threads) {
  const uint64_t n = items_->options().num_items;
  versions_ = std::vector<std::atomic<uint64_t>>(n);
  for (auto& v : versions_) v.store(0, std::memory_order_relaxed);

  std::atomic<uint64_t> next{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  threads.reserve(load_threads);
  for (int t = 0; t < load_threads; t++) {
    threads.emplace_back([this, t, n, &next, &failed] {
      auto client = cluster_->NewClient();
      Random rng(options_.seed * 1000 + t);
      for (;;) {
        const uint64_t id = next.fetch_add(1, std::memory_order_relaxed);
        if (id >= n || failed.load(std::memory_order_relaxed)) return;
        Status s = client->Put(items_->options().table, items_->RowKey(id),
                               items_->MakeRow(id, 0, &rng));
        if (!s.ok()) failed.store(true, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  if (failed.load()) return Status::Aborted("load failed");
  return Status::OK();
}

Status WorkloadRunner::RunWith(const RunnerOptions& options,
                               RunnerResult* result) {
  if (versions_.empty()) {
    versions_ = std::vector<std::atomic<uint64_t>>(
        items_->options().num_items);
    for (auto& v : versions_) v.store(0, std::memory_order_relaxed);
  }
  issued_.store(0);
  stop_.store(false);

  const auto start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(options.threads);
  std::vector<RunnerResult> partials(options.threads);
  for (int t = 0; t < options.threads; t++) {
    threads.emplace_back(
        [this, &options, t, &partials] { WorkerLoop(options, t, &partials[t]); });
  }
  if (options.max_duration_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options.max_duration_ms));
    stop_.store(true);
  }
  for (auto& t : threads) t.join();

  result->operations = 0;
  result->errors = 0;
  for (auto& partial : partials) {
    result->operations += partial.operations;
    result->errors += partial.errors;
    result->latency->Merge(*partial.latency);
  }
  result->elapsed_seconds =
      static_cast<double>(MicrosSince(start)) / 1e6;
  result->tps = result->elapsed_seconds > 0
                    ? static_cast<double>(result->operations) /
                          result->elapsed_seconds
                    : 0;
  return Status::OK();
}

void WorkloadRunner::WorkerLoop(const RunnerOptions& options,
                                int worker_id, RunnerResult* result) {
  auto raw_client = cluster_->NewClient();
  DiffIndexClient client(raw_client, cluster_->stats());
  // Cheap when unused: the engine only spawns its leg pool on the first
  // parallel scan.
  ReadEngine engine(&client);
  // Per-op latencies also land in the cluster registry; instruments are
  // resolved once per worker (the loop body stays lock-free).
  Histogram* op_hist = cluster_->metrics()->GetHistogram(
      std::string("workload.") + WorkloadOpName(options.op) + "_micros");
  obs::Counter* op_errors = cluster_->metrics()->GetCounter(
      std::string("workload.") + WorkloadOpName(options.op) + ".errors");
  auto chooser =
      KeyChooser::Create(options.distribution,
                         items_->options().num_items,
                         options.seed * 7919 + worker_id);
  Random rng(options.seed * 104729 + worker_id);

  // Pacing: each worker owns an equal slice of the target rate.
  const double per_thread_tps =
      options.target_tps > 0
          ? options.target_tps / options.threads
          : 0;
  const uint64_t pace_interval_micros =
      per_thread_tps > 0 ? static_cast<uint64_t>(1e6 / per_thread_tps) : 0;
  const auto start = Clock::now();
  uint64_t local_ops = 0;

  for (;;) {
    if (stop_.load(std::memory_order_relaxed)) break;
    if (options.total_operations > 0 &&
        issued_.fetch_add(1, std::memory_order_relaxed) >=
            options.total_operations) {
      break;
    }
    if (pace_interval_micros > 0) {
      const uint64_t due = local_ops * pace_interval_micros;
      uint64_t now = MicrosSince(start);
      while (now < due && !stop_.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(std::min<uint64_t>(due - now, 1000)));
        now = MicrosSince(start);
      }
    }

    const uint64_t id = chooser->Next();
    const auto op_start = Clock::now();
    Status s;
    switch (options.op) {
      case WorkloadOp::kUpdateTitle: {
        const uint64_t version =
            versions_[id].fetch_add(1, std::memory_order_relaxed) + 1;
        s = client.Put(items_->options().table, items_->RowKey(id),
                       {Cell{ItemTable::kTitleColumn,
                             items_->TitleValue(id, version), false}});
        break;
      }
      case WorkloadOp::kUpdateFullRow: {
        const uint64_t version =
            versions_[id].fetch_add(1, std::memory_order_relaxed) + 1;
        s = client.Put(items_->options().table, items_->RowKey(id),
                       items_->MakeRow(id, version, &rng));
        break;
      }
      case WorkloadOp::kBasePutNoIndex: {
        const uint64_t version =
            versions_[id].fetch_add(1, std::memory_order_relaxed) + 1;
        s = client.Put(items_->options().table, items_->RowKey(id),
                       {Cell{ItemTable::kTitleColumn,
                             items_->TitleValue(id, version), false}});
        break;
      }
      case WorkloadOp::kReadIndexExact: {
        const uint64_t version =
            versions_[id].load(std::memory_order_relaxed);
        std::vector<IndexHit> hits;
        s = client.GetByIndex(items_->options().table,
                              ItemTable::kTitleIndex,
                              items_->TitleValue(id, version), &hits);
        break;
      }
      case WorkloadOp::kRangeIndexPrice: {
        const uint64_t domain = items_->options().price_domain;
        const uint64_t width =
            std::min(options.price_range_width, domain);
        const uint64_t lo = rng.Uniform(domain - width + 1);
        std::vector<IndexHit> hits;
        s = client.RangeByIndex(items_->options().table,
                                ItemTable::kPriceIndex,
                                EncodeUint64IndexValue(lo),
                                EncodeUint64IndexValue(lo + width), 0,
                                &hits);
        break;
      }
      case WorkloadOp::kScanIndexRange: {
        const uint64_t domain = items_->options().price_domain;
        const uint64_t width =
            std::min(options.price_range_width, domain);
        const uint64_t lo = rng.Uniform(domain - width + 1);
        ScanSpec spec;
        spec.table = items_->options().table;
        spec.index_name = ItemTable::kPriceIndex;
        spec.value_lo_encoded = EncodeUint64IndexValue(lo);
        spec.value_hi_encoded = EncodeUint64IndexValue(lo + width);
        if (options.scan_covered) {
          spec.projection = {ItemTable::kPriceColumn};
        }
        ScanOptions scan;
        scan.page_entries = options.scan_page_entries;
        scan.max_parallel = options.scan_parallel;
        scan.allow_covered = options.scan_covered;
        scan.batched_repair = options.scan_batched_repair;
        std::vector<ScannedRow> rows;
        s = engine.ScanByIndex(spec, scan, &rows);
        break;
      }
      case WorkloadOp::kScanTableRange: {
        std::vector<ScannedRow> rows;
        s = raw_client->ScanRows(items_->options().table,
                                 items_->RowKey(id), "", kMaxTimestamp,
                                 options.scan_rows, &rows);
        break;
      }
    }
    const uint64_t latency_micros =
        static_cast<uint64_t>(std::chrono::duration_cast<
                                  std::chrono::microseconds>(Clock::now() -
                                                             op_start)
                                  .count());
    result->latency->Add(latency_micros);
    op_hist->Add(latency_micros);
    result->operations++;
    local_ops++;
    if (!s.ok()) {
      result->errors++;
      op_errors->Add();
    }
  }
}

}  // namespace diffindex
