#include "workload/runner.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "core/diff_index_client.h"
#include "core/index_codec.h"
#include "query/engine.h"

namespace diffindex {

namespace {
using Clock = std::chrono::steady_clock;

uint64_t MicrosSince(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            start)
          .count());
}

const char* WorkloadOpName(WorkloadOp op) {
  switch (op) {
    case WorkloadOp::kUpdateTitle:
      return "update_title";
    case WorkloadOp::kUpdateFullRow:
      return "update_full_row";
    case WorkloadOp::kReadIndexExact:
      return "read_index_exact";
    case WorkloadOp::kRangeIndexPrice:
      return "range_index_price";
    case WorkloadOp::kBasePutNoIndex:
      return "base_put_no_index";
    case WorkloadOp::kScanIndexRange:
      return "scan_index_range";
    case WorkloadOp::kScanTableRange:
      return "scan_table_range";
  }
  return "unknown";
}

// One entry per operation a worker may issue: the op plus its cached
// registry instruments and its cumulative weight in per-million units
// (mix selection is one Uniform(1e6) draw against this table).
struct MixSlot {
  WorkloadOp op;
  uint64_t cumulative_per_million;
  Histogram* hist;
  obs::Counter* errors;
};

std::vector<MixSlot> BuildMixSlots(const RunnerOptions& options,
                                   obs::MetricsRegistry* metrics) {
  std::vector<RunnerOptions::MixEntry> entries = options.mix;
  if (entries.empty()) {
    entries.push_back(RunnerOptions::MixEntry{options.op, 1.0});
  }
  double total = 0;
  for (const auto& entry : entries) {
    if (entry.weight > 0) total += entry.weight;
  }
  std::vector<MixSlot> slots;
  slots.reserve(entries.size());
  double running = 0;
  for (const auto& entry : entries) {
    if (entry.weight <= 0 && entries.size() > 1) continue;
    running += entry.weight > 0 ? entry.weight : 1.0;
    MixSlot slot;
    slot.op = entry.op;
    slot.cumulative_per_million = total > 0
        ? static_cast<uint64_t>(running / total * 1000000.0)
        : 1000000;
    slot.hist = metrics->GetHistogram(
        std::string("workload.") + WorkloadOpName(entry.op) + "_micros");
    slot.errors = metrics->GetCounter(
        std::string("workload.") + WorkloadOpName(entry.op) + ".errors");
    slots.push_back(slot);
  }
  slots.back().cumulative_per_million = 1000000;  // absorb rounding
  return slots;
}

}  // namespace

Status WorkloadRunner::LoadItems(int load_threads) {
  const uint64_t n = items_->options().num_items;
  versions_ = std::vector<std::atomic<uint64_t>>(n);
  for (auto& v : versions_) v.store(0, std::memory_order_relaxed);

  std::atomic<uint64_t> next{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  threads.reserve(load_threads);
  for (int t = 0; t < load_threads; t++) {
    threads.emplace_back([this, t, n, &next, &failed] {
      auto client = cluster_->NewClient();
      Random rng(options_.seed * 1000 + t);
      for (;;) {
        const uint64_t id = next.fetch_add(1, std::memory_order_relaxed);
        if (id >= n || failed.load(std::memory_order_relaxed)) return;
        Status s = client->Put(items_->options().table, items_->RowKey(id),
                               items_->MakeRow(id, 0, &rng));
        if (!s.ok()) failed.store(true, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  if (failed.load()) return Status::Aborted("load failed");
  return Status::OK();
}

Status WorkloadRunner::RunWith(const RunnerOptions& options,
                               RunnerResult* result) {
  if (versions_.empty()) {
    versions_ = std::vector<std::atomic<uint64_t>>(
        items_->options().num_items);
    for (auto& v : versions_) v.store(0, std::memory_order_relaxed);
  }
  issued_.store(0);
  stop_.store(false);

  std::unique_ptr<obs::SloTracker> slo;
  if (options.slo_window_micros > 0) {
    obs::SloOptions slo_options;
    slo_options.window_micros = options.slo_window_micros;
    slo_options.p99_target_micros = options.slo_p99_target_micros;
    slo_options.metrics = cluster_->metrics();
    slo = std::make_unique<obs::SloTracker>(slo_options);
  }

  const auto start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(options.threads);
  std::vector<RunnerResult> partials(options.threads);
  for (int t = 0; t < options.threads; t++) {
    threads.emplace_back([this, &options, t, &partials, &slo, start] {
      WorkerLoop(options, t, &partials[t], slo.get(), start);
    });
  }
  if (options.max_duration_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options.max_duration_ms));
    stop_.store(true);
  }
  for (auto& t : threads) t.join();

  result->operations = 0;
  result->errors = 0;
  for (auto& partial : partials) {
    result->operations += partial.operations;
    result->errors += partial.errors;
    result->latency->Merge(*partial.latency);
  }
  result->elapsed_seconds =
      static_cast<double>(MicrosSince(start)) / 1e6;
  result->tps = result->elapsed_seconds > 0
                    ? static_cast<double>(result->operations) /
                          result->elapsed_seconds
                    : 0;
  if (slo != nullptr) {
    result->windows = slo->Finish(MicrosSince(start));
  } else {
    result->windows.clear();
  }
  return Status::OK();
}

Status WorkloadRunner::ExecuteOneOp(WorkloadOp op, uint64_t id,
                                    const RunnerOptions& options,
                                    Client* raw_client,
                                    DiffIndexClient* client,
                                    ReadEngine* engine, Random* rng) {
  switch (op) {
    case WorkloadOp::kUpdateTitle: {
      const uint64_t version =
          versions_[id].fetch_add(1, std::memory_order_relaxed) + 1;
      recency_.fetch_add(1, std::memory_order_relaxed);
      return client->Put(items_->options().table, items_->RowKey(id),
                         {Cell{ItemTable::kTitleColumn,
                               items_->TitleValue(id, version), false}});
    }
    case WorkloadOp::kUpdateFullRow: {
      const uint64_t version =
          versions_[id].fetch_add(1, std::memory_order_relaxed) + 1;
      recency_.fetch_add(1, std::memory_order_relaxed);
      return client->Put(items_->options().table, items_->RowKey(id),
                         items_->MakeRow(id, version, rng));
    }
    case WorkloadOp::kBasePutNoIndex: {
      const uint64_t version =
          versions_[id].fetch_add(1, std::memory_order_relaxed) + 1;
      recency_.fetch_add(1, std::memory_order_relaxed);
      return client->Put(items_->options().table, items_->RowKey(id),
                         {Cell{ItemTable::kTitleColumn,
                               items_->TitleValue(id, version), false}});
    }
    case WorkloadOp::kReadIndexExact: {
      const uint64_t version =
          versions_[id].load(std::memory_order_relaxed);
      std::vector<IndexHit> hits;
      return client->GetByIndex(items_->options().table,
                                ItemTable::kTitleIndex,
                                items_->TitleValue(id, version), &hits);
    }
    case WorkloadOp::kRangeIndexPrice: {
      const uint64_t domain = items_->options().price_domain;
      const uint64_t width = std::min(options.price_range_width, domain);
      const uint64_t lo = rng->Uniform(domain - width + 1);
      std::vector<IndexHit> hits;
      return client->RangeByIndex(items_->options().table,
                                  ItemTable::kPriceIndex,
                                  EncodeUint64IndexValue(lo),
                                  EncodeUint64IndexValue(lo + width), 0,
                                  &hits);
    }
    case WorkloadOp::kScanIndexRange: {
      const uint64_t domain = items_->options().price_domain;
      const uint64_t width = std::min(options.price_range_width, domain);
      const uint64_t lo = rng->Uniform(domain - width + 1);
      ScanSpec spec;
      spec.table = items_->options().table;
      spec.index_name = ItemTable::kPriceIndex;
      spec.value_lo_encoded = EncodeUint64IndexValue(lo);
      spec.value_hi_encoded = EncodeUint64IndexValue(lo + width);
      if (options.scan_covered) {
        spec.projection = {ItemTable::kPriceColumn};
      }
      ScanOptions scan;
      scan.page_entries = options.scan_page_entries;
      scan.max_parallel = options.scan_parallel;
      scan.allow_covered = options.scan_covered;
      scan.batched_repair = options.scan_batched_repair;
      std::vector<ScannedRow> rows;
      return engine->ScanByIndex(spec, scan, &rows);
    }
    case WorkloadOp::kScanTableRange: {
      std::vector<ScannedRow> rows;
      return raw_client->ScanRows(items_->options().table,
                                  items_->RowKey(id), "", kMaxTimestamp,
                                  options.scan_rows, &rows);
    }
  }
  return Status::InvalidArgument("unknown workload op");
}

void WorkloadRunner::WorkerLoop(const RunnerOptions& options,
                                int worker_id, RunnerResult* result,
                                obs::SloTracker* slo,
                                Clock::time_point run_start) {
  auto raw_client = cluster_->NewClient();
  DiffIndexClient client(raw_client, cluster_->stats());
  // Cheap when unused: the engine only spawns its leg pool on the first
  // parallel scan.
  ReadEngine engine(&client);
  // Per-op latencies also land in the cluster registry; instruments are
  // resolved once per worker (the loop body stays lock-free).
  const std::vector<MixSlot> slots =
      BuildMixSlots(options, cluster_->metrics());
  KeyChooserParams chooser_params;
  chooser_params.hotspot_set_fraction = options.hotspot_set_fraction;
  chooser_params.hotspot_op_fraction = options.hotspot_op_fraction;
  chooser_params.recency = &recency_;
  auto chooser =
      KeyChooser::Create(options.distribution,
                         items_->options().num_items,
                         options.seed * 7919 + worker_id, chooser_params);
  Random rng(options.seed * 104729 + worker_id);

  // Pacing: each worker owns an equal slice of the target rate.
  const double per_thread_tps =
      options.target_tps > 0
          ? options.target_tps / options.threads
          : 0;
  const uint64_t pace_interval_micros =
      per_thread_tps > 0 ? static_cast<uint64_t>(1e6 / per_thread_tps) : 0;
  const auto start = Clock::now();
  uint64_t local_ops = 0;

  for (;;) {
    if (stop_.load(std::memory_order_relaxed)) break;
    if (options.total_operations > 0 &&
        issued_.fetch_add(1, std::memory_order_relaxed) >=
            options.total_operations) {
      break;
    }
    if (pace_interval_micros > 0) {
      const uint64_t due = local_ops * pace_interval_micros;
      uint64_t now = MicrosSince(start);
      while (now < due && !stop_.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(std::min<uint64_t>(due - now, 1000)));
        now = MicrosSince(start);
      }
    }

    const MixSlot* slot = &slots.front();
    if (slots.size() > 1) {
      const uint64_t draw = rng.Uniform(1000000);
      for (const MixSlot& candidate : slots) {
        if (draw < candidate.cumulative_per_million) {
          slot = &candidate;
          break;
        }
      }
    }
    const uint64_t id = chooser->Next();
    const auto op_start = Clock::now();
    Status s = ExecuteOneOp(slot->op, id, options, raw_client.get(),
                            &client, &engine, &rng);
    const uint64_t latency_micros =
        static_cast<uint64_t>(std::chrono::duration_cast<
                                  std::chrono::microseconds>(Clock::now() -
                                                             op_start)
                                  .count());
    result->latency->Add(latency_micros);
    slot->hist->Add(latency_micros);
    if (slo != nullptr) {
      slo->RecordAt(MicrosSince(run_start), latency_micros, s.ok());
    }
    result->operations++;
    local_ops++;
    if (!s.ok()) {
      result->errors++;
      slot->errors->Add();
    }
  }
}

}  // namespace diffindex
