// Key choosers for the workload driver (YCSB-style request
// distributions).

#ifndef DIFFINDEX_WORKLOAD_GENERATORS_H_
#define DIFFINDEX_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <memory>

#include "util/random.h"
#include "util/zipfian.h"

namespace diffindex {

enum class KeyDistribution { kUniform, kZipfian };

class KeyChooser {
 public:
  virtual ~KeyChooser() = default;
  virtual uint64_t Next() = 0;

  static std::unique_ptr<KeyChooser> Create(KeyDistribution dist,
                                            uint64_t num_items,
                                            uint64_t seed);
};

}  // namespace diffindex

#endif  // DIFFINDEX_WORKLOAD_GENERATORS_H_
