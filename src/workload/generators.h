// Key choosers for the workload driver (YCSB-style request
// distributions).

#ifndef DIFFINDEX_WORKLOAD_GENERATORS_H_
#define DIFFINDEX_WORKLOAD_GENERATORS_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "util/random.h"
#include "util/zipfian.h"

namespace diffindex {

enum class KeyDistribution {
  kUniform,
  kZipfian,
  // YCSB hotspot: hotspot_op_fraction of the draws land uniformly in a
  // hot set of hotspot_set_fraction * num_items keys, the rest uniformly
  // in the cold remainder.
  kHotspot,
  // YCSB latest: zipfian-skewed toward the most recently written keys.
  // The "now" edge is a recency cursor the runner advances on every write
  // (see KeyChooserParams::recency); draws cluster just below it and wrap
  // around the key space.
  kLatest,
};

struct KeyChooserParams {
  double hotspot_set_fraction = 0.2;
  double hotspot_op_fraction = 0.8;
  // kLatest only: monotonically increasing write cursor published by the
  // workload runner. May be null — the chooser then treats the newest
  // preloaded key (num_items - 1) as the fixed recency edge.
  const std::atomic<uint64_t>* recency = nullptr;
};

class KeyChooser {
 public:
  virtual ~KeyChooser() = default;
  virtual uint64_t Next() = 0;

  static std::unique_ptr<KeyChooser> Create(
      KeyDistribution dist, uint64_t num_items, uint64_t seed,
      const KeyChooserParams& params = KeyChooserParams());
};

}  // namespace diffindex

#endif  // DIFFINDEX_WORKLOAD_GENERATORS_H_
