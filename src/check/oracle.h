// Invariant oracle: the checks run against the terminal state of every
// explored schedule (DESIGN.md §12). The oracle reads the REAL cluster —
// raw index-table scans, base-table point reads at pinned timestamps —
// after the scheduler has flipped to release mode, so the checks
// themselves add no scheduling points.
//
// Checked invariants (table in DESIGN.md §12.2):
//   * no-lost     — every live base (row, value) has an index entry
//                   (all schemes; quiescence means the AUQ is drained).
//   * no-phantom  — every index entry maps back to the live base value
//                   (all schemes except sync-insert, whose stale entries
//                   are by design and cleaned lazily — Algorithm 2).
//   * timestamp rule (§4.3) — an index entry carrying timestamp T must
//                   correspond to the base version AT T: a base read
//                   pinned to T returns that exact version.
//   * drain-before-flush (§5.3, Figure 5) — every CHECK_POINT_VAL
//                   "rs.flush.drained_depth" recorded 0: the AUQ was
//                   empty at the flush drain barrier.
//
// Causal (sync-full) and read-your-writes (async-session) are inline
// checks made by the workload's writer threads mid-run (they are
// statements about reads *during* the interleaving, not about the
// terminal state) — see model_workload.cc.

#ifndef DIFFINDEX_CHECK_ORACLE_H_
#define DIFFINDEX_CHECK_ORACLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "check/scheduler.h"
#include "cluster/catalog.h"
#include "core/diff_index_client.h"

namespace diffindex {
namespace check {

struct OracleInput {
  DiffIndexClient* client = nullptr;
  std::string table;
  std::string index_name;
  std::string column;
  IndexScheme scheme = IndexScheme::kSyncFull;
  // The workload's row / encoded-value universes (the oracle scans the
  // index per value instead of assuming an unbounded-scan convention).
  std::vector<std::string> rows;
  std::vector<std::string> values;
  const std::vector<Scheduler::PointEvent>* points = nullptr;
};

struct OracleReport {
  // "" when every invariant held; otherwise a one-line violation report
  // naming the invariant and the offending entry.
  std::string violation;
  // FNV-1a hash of the terminal state (sorted index entries with their
  // timestamps + live base pairs) — the explorer's state fingerprint.
  uint64_t fingerprint = 0;
};

OracleReport CheckTerminalState(const OracleInput& input);

}  // namespace check
}  // namespace diffindex

#endif  // DIFFINDEX_CHECK_ORACLE_H_
