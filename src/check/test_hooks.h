// Mutation hooks for the model checker's regression corpus
// (tests/check/): each hook re-introduces a previously-fixed concurrency
// bug behind an atomic flag, so the checker can prove it still *finds*
// the bug within its exploration bounds. The hooked code paths only
// consult these flags in DIFFINDEX_CHECK builds; production builds never
// read them.

#ifndef DIFFINDEX_CHECK_TEST_HOOKS_H_
#define DIFFINDEX_CHECK_TEST_HOOKS_H_

#include <atomic>

namespace diffindex {
namespace check {
namespace test_hooks {

// Re-introduces the PR-4 min-anchor coalescing bug: when the AUQ batched
// drain coalesces tasks for the same (index, base row), collapse the
// survivor's retraction anchors (old_ts + covered_old_ts) to the single
// minimum point instead of replaying every anchor. An absorbed put whose
// entry was already delivered (or whose anchor is the only one reading
// the superseded value) then never gets retracted — a phantom index
// entry the invariant oracle reports.
extern std::atomic<bool> buggy_min_anchor_coalescing;

// Re-introduces the timestamp-inversion race the model checker found in
// the sync observer path: draw a put's timestamp BEFORE the region's
// write-serialized section (the pre-fix ExecutePut behavior) instead of
// inside LogAndApply's write_mu critical section. Two same-row puts can
// then apply in the opposite order of their timestamps; the later-ts
// put's retraction read at ts-δ runs before the earlier-ts apply lands,
// so that entry is never retracted — a phantom the invariant oracle
// reports (first seen as sync-full + group-commit, where the WAL ticket
// wait under write_mu widens the inversion window).
extern std::atomic<bool> buggy_ts_outside_write_mu;

}  // namespace test_hooks
}  // namespace check
}  // namespace diffindex

#endif  // DIFFINDEX_CHECK_TEST_HOOKS_H_
