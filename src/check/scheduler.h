// Deterministic cooperative scheduler: the execution engine of the
// concurrency model checker (DESIGN.md §12).
//
// The scheduler serializes the *real* implementation threads (drivers,
// AUQ workers) so that exactly one registered thread runs at a time; a
// token is handed from thread to thread at explicit scheduling points.
// Scheduling points are:
//
//   * CHECK_YIELD sites (src/check/yield.h) — the seam instrumentation
//     in auq.cc / observers.cc / region_server.cc / wal.cc /
//     base_row_cache.cc. These are the *decision* points: when more than
//     one thread could run, the scheduler records the choice (for the
//     explorer to branch on) or replays a forced choice sequence.
//   * Blocking operations in util/mutex.h — a registered thread that
//     would block on a Mutex/SharedMutex/CondVar parks cooperatively and
//     passes the token instead of blocking the OS thread (a real block
//     while holding the token would hang the run, since the lock holder
//     may itself be parked).
//
// Between scheduling points execution is single-threaded, so a run is a
// pure function of the recorded choice sequence: replaying the same
// choices replays the same interleaving bit-for-bit. The explorer
// (src/check/explorer.h) drives DFS over these choice sequences.
//
// A run ends when every non-daemon thread has exited and all remaining
// daemon threads are blocked (the quiescent terminal state — for the
// AUQ this means the queue is drained). The scheduler then flips to
// *release mode*: every hook becomes a pass-through, parked threads
// resume under the OS scheduler, and teardown/oracle code runs
// unconstrained.
//
// The scheduler itself uses raw std primitives (not util/mutex.h): the
// instrumented wrappers call back into it, so using them here would
// recurse. NOLINTFILE(diffindex-raw-mutex)

#ifndef DIFFINDEX_CHECK_SCHEDULER_H_
#define DIFFINDEX_CHECK_SCHEDULER_H_

#include <atomic>
#include <condition_variable>  // NOLINT(diffindex-raw-mutex)
#include <mutex>               // NOLINT(diffindex-raw-mutex)
#include <string>
#include <vector>

namespace diffindex {
namespace check {

// One scheduling decision: which thread got the token when more than one
// was enabled. `options` is sorted by thread id; `running` is the thread
// that held the token at the decision (-1 if it had just blocked or
// exited); choosing an enabled thread other than `running` is a
// preemption.
struct DecisionRecord {
  struct Option {
    int thread = -1;
    // The op the thread performs next if scheduled: its last CHECK_YIELD
    // tag, "mutex.lock" with the lock address, or "cv.wake". Used by the
    // explorer's independence test for sleep-set pruning.
    const char* tag = "start";
    const void* resource = nullptr;
    bool is_lock = false;
  };
  std::vector<Option> options;
  int chosen = -1;
  int running = -1;
};

class Scheduler {
 public:
  struct Options {
    // Livelock guard: a run exceeding this many recorded decisions is
    // terminated with a "livelock" violation.
    int max_decisions = 50000;
  };

  Scheduler() : Scheduler(Options()) {}
  explicit Scheduler(Options options);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Installs this scheduler as the process-global active one (at most
  // one at a time; Activate aborts if another is active).
  void Activate();
  void Deactivate();
  static Scheduler* Active();

  // True when the calling thread is registered with the active scheduler
  // and the run is still in controlled mode — the cheap guard every
  // instrumentation hook checks first.
  static bool ControlledHere();
  // The scheduler controlling the calling thread, or nullptr.
  static Scheduler* CurrentIfControlled();

  // ---- Thread lifecycle ------------------------------------------------
  // Registers the calling thread. The first registration while no thread
  // holds the token (the run's main thread) claims it and returns
  // immediately; later registrations park until scheduled. Daemon
  // threads (AUQ workers) do not count toward run completion.
  int RegisterCurrentThread(const char* name, bool daemon);
  // Marks the calling thread exited and passes the token.
  void UnregisterCurrentThread();
  // Total threads ever registered (monotone; ids are dense from 0).
  int RegisteredCount();
  // Blocks (for real — registration does not need the token) until
  // `count` threads have registered. Called by the token holder right
  // after spawning threads so ids are assigned deterministically.
  void AwaitRegistered(int count);

  // ---- Instrumentation hooks -------------------------------------------
  // Decision point (CHECK_YIELD). May switch to another thread; returns
  // once the calling thread is scheduled again.
  void Yield(const char* tag, const void* resource, bool is_lock);
  // The calling thread failed to acquire the lock at `addr`: park until
  // a release makes it runnable and the scheduler picks it. Returns
  // false when the scheduler released mid-park (caller falls back to a
  // real blocking acquire).
  bool BlockOnMutex(const void* addr);
  // A lock at `addr` was released: every thread parked on it becomes
  // runnable (no token transfer — the releaser keeps running).
  void OnMutexRelease(const void* addr);
  // Cooperative condition-variable wait. The caller must have released
  // the associated Mutex already (it still holds the token between the
  // release and this call, so no wakeup can be lost). `timed` marks a
  // WaitFor: timed waiters are woken by quiescence (the "timeout") when
  // nothing else can run. Returns false when the scheduler released
  // mid-park.
  bool BlockOnCv(const void* cv_addr, bool timed);
  // Signal/SignalAll on `cv_addr`: every parked waiter becomes runnable
  // (waking all on Signal over-approximates, which spurious-wakeup
  // semantics make legal).
  void OnCvNotify(const void* cv_addr);
  // Records an instrumentation event (CHECK_POINT_VAL) for the oracle,
  // e.g. the AUQ depth observed at the flush drain barrier.
  void NotePoint(const char* tag, long long value);

  // ---- Run orchestration (explorer / test driver side) -----------------
  // Forces the first `choices.size()` decisions; beyond the prefix the
  // default policy applies (keep the running thread; else lowest id).
  void SetReplay(std::vector<int> choices);
  // Decisions are only recorded (and replayed) inside the exploration
  // window. Setup code runs with the window off so the explorer does not
  // branch over cluster-construction interleavings.
  void SetExplorationWindow(bool on);
  // Called by the run's main thread after spawning the driver threads:
  // unregisters it and blocks (for real) until the run completes, then
  // returns with the scheduler in release mode.
  void FinishMainAndWait();

  // ---- Results ---------------------------------------------------------
  const std::vector<DecisionRecord>& decisions() const { return decisions_; }
  std::vector<int> choices() const;
  // "", or "deadlock: ..." / "livelock: ...".
  const std::string& violation() const { return violation_; }
  // True when a replayed choice was not enabled at its decision — the
  // run under replay did not reproduce the recorded interleaving.
  bool diverged() const { return diverged_; }

  struct PointEvent {
    const char* tag;
    long long value;
    int thread;
  };
  const std::vector<PointEvent>& points() const { return points_; }

 private:
  struct ThreadState {
    enum class Run {
      kRunnable,
      kRunning,
      kBlockedMutex,
      kBlockedCv,
      kExited,
    };
    std::string name;
    bool daemon = false;
    Run run = Run::kRunnable;
    const void* wait_addr = nullptr;
    bool timed = false;
    // Pending-op signature: what the thread does next when scheduled.
    const char* pending_tag = "start";
    const void* pending_resource = nullptr;
    bool pending_is_lock = false;
  };

  int ChooseLocked(const std::vector<DecisionRecord::Option>& options,
                   int running);
  void ScheduleNextLocked();
  void CompleteLocked();
  void ParkLocked(std::unique_lock<std::mutex>& lk, int id);

  const Options options_;
  std::mutex mu_;               // NOLINT(diffindex-raw-mutex)
  std::condition_variable cv_;  // NOLINT(diffindex-raw-mutex)
  std::atomic<bool> controlled_{true};
  std::vector<ThreadState> threads_;
  int current_ = -1;
  bool window_ = false;
  std::vector<int> replay_;
  size_t decision_index_ = 0;
  std::vector<DecisionRecord> decisions_;
  std::vector<PointEvent> points_;
  std::string violation_;
  bool diverged_ = false;
};

}  // namespace check
}  // namespace diffindex

#endif  // DIFFINDEX_CHECK_SCHEDULER_H_
