#include "check/test_hooks.h"

namespace diffindex {
namespace check {
namespace test_hooks {

std::atomic<bool> buggy_min_anchor_coalescing{false};
std::atomic<bool> buggy_ts_outside_write_mu{false};

}  // namespace test_hooks
}  // namespace check
}  // namespace diffindex
