#include "check/model_workload.h"

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "check/oracle.h"
#include "check/scheduler.h"
#include "cluster/cluster.h"
#include "query/engine.h"

namespace diffindex {
namespace check {
namespace {

constexpr char kTable[] = "items";
constexpr char kIndexName[] = "by_title";
constexpr char kColumn[] = "title";

}  // namespace

RunOutcome RunModel(const ModelOptions& options,
                    const std::vector<int>& replay) {
  RunOutcome out;

  Scheduler::Options sched_options;
  sched_options.max_decisions = options.max_decisions;
  auto scheduler = std::make_unique<Scheduler>(sched_options);
  scheduler->Activate();
  scheduler->RegisterCurrentThread("main", /*daemon=*/false);

  // Setup runs single-threaded with the exploration window off: the
  // main thread holds the token throughout, so cluster construction is
  // never branched over and thread ids are deterministic.
  ClusterOptions cluster_options;
  cluster_options.num_servers = 1;
  cluster_options.regions_per_table = 1;
  cluster_options.auq.worker_threads = 1;
  cluster_options.auq.retry_backoff_ms = 0;
  cluster_options.auq.process_delay_ms = 0;
  cluster_options.auq.staleness_sample_every = 0;
  cluster_options.auq.drain_batch_size = options.drain_batch_size;
  if (options.group_commit) {
    cluster_options.server.wal_sync = wal::SyncMode::kGroupCommit;
    cluster_options.server.wal_group_window_micros = 0;
  }

  std::unique_ptr<Cluster> cluster;
  Status s = Cluster::Create(cluster_options, &cluster);
  if (s.ok()) s = cluster->master()->CreateTable(kTable);
  if (s.ok()) {
    IndexDescriptor index;
    index.name = kIndexName;
    index.column = kColumn;
    index.scheme = options.scheme;
    s = cluster->master()->CreateIndex(kTable, index);
  }

  const int num_writers = options.num_writers;
  const int ops = options.ops_per_writer;
  std::vector<std::unique_ptr<DiffIndexClient>> clients;
  std::vector<std::string> rows;
  std::vector<std::string> values;
  // Clients: one per writer, one for the oracle, plus one for the scan
  // reader when enabled.
  const int num_clients =
      num_writers + 1 + (options.scan_reader ? 1 : 0);
  if (s.ok()) {
    for (int i = 0; i < num_clients && s.ok(); ++i) {
      clients.push_back(cluster->NewDiffIndexClient());
      s = clients.back()->raw_client()->RefreshLayout();
    }
    for (int i = 0; i < num_writers; ++i) {
      rows.push_back(options.same_row ? "row0" : "row" + std::to_string(i));
      for (int j = 0; j < ops; ++j) {
        values.push_back("w" + std::to_string(i) + "v" + std::to_string(j));
      }
    }
    if (options.same_row) rows.resize(1);
  }
  if (!s.ok()) {
    // Setup failed before any interleaving existed — report and bail.
    // Release the scheduler BEFORE tearing the cluster down: its AUQ
    // workers are parked waiting for the token and can only be joined
    // once the run flips to release mode.
    out.violation = "model: setup failed: " + s.ToString();
    scheduler->FinishMainAndWait();
    clients.clear();
    cluster.reset();
    scheduler->Deactivate();
    return out;
  }

#ifdef DIFFINDEX_CHECK
  // The AUQ worker daemons register from their own threads at spawn, and
  // a thread's id is its registration order — part of the recorded
  // schedule. Wait for every daemon before the writers claim their ids,
  // or OS spawn timing decides which thread a recorded choice drives.
  scheduler->AwaitRegistered(
      1 + cluster_options.num_servers * cluster_options.auq.worker_threads);
#endif

  scheduler->SetReplay(replay);

  // One violation slot per driver thread (writers + optional scan
  // reader): no shared mutable state between the drivers, so the inline
  // checks add no synchronization of their own.
  std::vector<std::string> inline_violations(
      static_cast<size_t>(num_writers) + (options.scan_reader ? 1 : 0));
  const bool inline_checks =
      !options.same_row && (options.scheme == IndexScheme::kSyncFull ||
                            options.scheme == IndexScheme::kAsyncSession);

  const int registered_before = scheduler->RegisteredCount();
  std::vector<std::thread> writers;
  writers.reserve(num_writers);
  for (int i = 0; i < num_writers; ++i) {
    writers.emplace_back([&, i] {
      Scheduler* sched = scheduler.get();
      // Register strictly in writer-index order: thread ids are part of
      // the recorded schedule, so two runs of the same model must hand
      // the same id to the same writer — OS spawn order must not leak in.
      sched->AwaitRegistered(registered_before + i);
      sched->RegisterCurrentThread("writer", /*daemon=*/false);
      DiffIndexClient* client = clients[i].get();
      const std::string row =
          options.same_row ? "row0" : "row" + std::to_string(i);
      const bool use_session = options.scheme == IndexScheme::kAsyncSession;
      SessionId session{};
      if (use_session) session = client->GetSession();
      for (int j = 0; j < ops; ++j) {
        const std::string& value =
            values[static_cast<size_t>(i * ops + j)];
        Status ws;
        if (use_session) {
          ws = client->SessionPut(session, kTable, row,
                                  {Cell{kColumn, value, false}});
        } else {
          ws = client->PutColumn(kTable, row, kColumn, value);
        }
        if (!ws.ok()) {
          inline_violations[i] = "writer put failed: " + ws.ToString();
          break;
        }
        if (inline_checks) {
          std::vector<IndexHit> hits;
          if (use_session) {
            ws = client->SessionGetByIndex(session, kTable, kIndexName,
                                           value, &hits);
          } else {
            ws = client->GetByIndex(kTable, kIndexName, value, &hits);
          }
          bool found = false;
          for (const IndexHit& hit : hits) {
            if (hit.base_row == row) found = true;
          }
          if (!ws.ok() || !found) {
            inline_violations[i] =
                std::string(use_session ? "read-your-writes" : "causal") +
                ": put " + row + "=" + value +
                " not visible to the writer's own index read" +
                (ws.ok() ? "" : " (" + ws.ToString() + ")");
            break;
          }
        }
      }
      if (use_session) client->EndSession(session);
      if (options.flush_after_writes && i == num_writers - 1) {
        Status fs = client->raw_client()->FlushTable(kTable);
        if (!fs.ok() && inline_violations[i].empty()) {
          inline_violations[i] = "flush failed: " + fs.ToString();
        }
      }
      sched->UnregisterCurrentThread();
    });
  }
  if (options.scan_reader) {
    // Registers after every writer (ids are part of the schedule), then
    // drives paged scatter-gather scans with batched read-repair over
    // the whole index range while the writers run. Legs run inline
    // (max_parallel = 1): pool threads would escape the scheduler.
    writers.emplace_back([&] {
      Scheduler* sched = scheduler.get();
      sched->AwaitRegistered(registered_before + num_writers);
      sched->RegisterCurrentThread("scanner", /*daemon=*/false);
      DiffIndexClient* client =
          clients[static_cast<size_t>(num_writers) + 1].get();
      ReadEngine engine(client);
      ScanSpec spec;
      spec.table = kTable;
      spec.index_name = kIndexName;
      ScanOptions scan;
      scan.page_entries = 2;
      scan.max_parallel = 1;
      scan.batched_repair = true;
      for (int pass = 0; pass < 2; ++pass) {
        std::vector<ScannedRow> scanned;
        Status rs = engine.ScanByIndex(spec, scan, &scanned);
        if (!rs.ok()) {
          inline_violations[static_cast<size_t>(num_writers)] =
              "scan reader failed: " + rs.ToString();
          break;
        }
      }
      sched->UnregisterCurrentThread();
    });
  }
  scheduler->AwaitRegistered(registered_before + num_writers +
                             (options.scan_reader ? 1 : 0));
  // From the first handover below, every multi-way choice is recorded
  // (and replayed from the forced prefix).
  scheduler->SetExplorationWindow(true);
  scheduler->FinishMainAndWait();
  for (std::thread& t : writers) t.join();

  // Under DIFFINDEX_CHECK the terminal quiescence already implies the
  // AUQ drained. In a plain build (schedule-string stress replay) the
  // workers run un-instrumented, so poll the queue down before the
  // oracle reads.
  for (int i = 0; i < 5000; ++i) {
    bool drained = true;
    for (NodeId id : cluster->server_ids()) {
      if (cluster->index_manager(id)->QueueDepth() > 0) drained = false;
    }
    if (drained) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  out.decisions = scheduler->decisions();
  out.diverged = scheduler->diverged();
  out.violation = scheduler->violation();
  if (out.violation.empty()) {
    for (const std::string& v : inline_violations) {
      if (!v.empty()) {
        out.violation = v;
        break;
      }
    }
  }

  // Terminal-state oracle + fingerprint, read through the spare client
  // in release mode (the run is over; these reads are uncontrolled).
  OracleInput oracle;
  oracle.client = clients[static_cast<size_t>(num_writers)].get();
  oracle.table = kTable;
  oracle.index_name = kIndexName;
  oracle.column = kColumn;
  oracle.scheme = options.scheme;
  oracle.rows = rows;
  oracle.values = values;
  oracle.points = &scheduler->points();
  OracleReport oracle_report = CheckTerminalState(oracle);
  out.fingerprint = oracle_report.fingerprint;
  if (out.violation.empty()) out.violation = oracle_report.violation;

  // Teardown order matters: the cluster joins its AUQ workers while the
  // scheduler still exists (their instrumentation hooks are pass-through
  // in release mode but still dereference the active scheduler).
  clients.clear();
  cluster.reset();
  scheduler->Deactivate();
  return out;
}

RunFn ModelRunner(const ModelOptions& options) {
  return [options](const std::vector<int>& prefix) {
    return RunModel(options, prefix);
  };
}

Schedule ToSchedule(const ModelOptions& options,
                    const std::vector<int>& choices) {
  Schedule schedule;
  schedule.kind = "check";
  schedule.set("scheme", IndexSchemeName(options.scheme));
  schedule.set_int("batch", options.drain_batch_size);
  schedule.set_int("writers", options.num_writers);
  schedule.set_int("ops", options.ops_per_writer);
  schedule.set_int("same_row", options.same_row ? 1 : 0);
  schedule.set_int("flush", options.flush_after_writes ? 1 : 0);
  schedule.set_int("group_commit", options.group_commit ? 1 : 0);
  schedule.set_int("scan", options.scan_reader ? 1 : 0);
  schedule.choices = choices;
  return schedule;
}

bool FromSchedule(const Schedule& schedule, ModelOptions* options,
                  std::vector<int>* choices) {
  if (schedule.kind != "check") return false;
  ModelOptions out;
  const std::string scheme = schedule.get("scheme", "async-simple");
  bool known = false;
  for (IndexScheme candidate :
       {IndexScheme::kSyncFull, IndexScheme::kSyncInsert,
        IndexScheme::kAsyncSimple, IndexScheme::kAsyncSession}) {
    if (scheme == IndexSchemeName(candidate)) {
      out.scheme = candidate;
      known = true;
    }
  }
  if (!known) return false;
  out.drain_batch_size =
      static_cast<int>(schedule.get_int("batch", out.drain_batch_size));
  out.num_writers =
      static_cast<int>(schedule.get_int("writers", out.num_writers));
  out.ops_per_writer =
      static_cast<int>(schedule.get_int("ops", out.ops_per_writer));
  out.same_row = schedule.get_int("same_row", out.same_row ? 1 : 0) != 0;
  out.flush_after_writes = schedule.get_int("flush", 0) != 0;
  out.group_commit = schedule.get_int("group_commit", 0) != 0;
  out.scan_reader = schedule.get_int("scan", 0) != 0;
  *options = out;
  *choices = schedule.choices;
  return true;
}

}  // namespace check
}  // namespace diffindex
