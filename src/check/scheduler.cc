// Raw std primitives throughout: the instrumented util/mutex.h wrappers
// call back into this scheduler. NOLINTFILE(diffindex-raw-mutex)

#include "check/scheduler.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace diffindex {
namespace check {
namespace {

std::atomic<Scheduler*> g_active{nullptr};

// Which scheduler (if any) the calling thread is registered with, and
// its dense id there. Stale values from a previous run are harmless: the
// guard in ControlledHere compares against the active scheduler.
thread_local Scheduler* tls_scheduler = nullptr;
thread_local int tls_id = -1;

}  // namespace

Scheduler::Scheduler(Options options) : options_(options) {}

Scheduler::~Scheduler() {
  if (g_active.load(std::memory_order_acquire) == this) Deactivate();
}

void Scheduler::Activate() {
  Scheduler* expected = nullptr;
  if (!g_active.compare_exchange_strong(expected, this,
                                        std::memory_order_acq_rel)) {
    std::fprintf(stderr, "check::Scheduler: another scheduler is active\n");
    std::abort();
  }
}

void Scheduler::Deactivate() {
  Scheduler* expected = this;
  g_active.compare_exchange_strong(expected, nullptr,
                                   std::memory_order_acq_rel);
}

Scheduler* Scheduler::Active() {
  return g_active.load(std::memory_order_acquire);
}

bool Scheduler::ControlledHere() {
  return CurrentIfControlled() != nullptr;
}

Scheduler* Scheduler::CurrentIfControlled() {
  Scheduler* s = tls_scheduler;
  if (s == nullptr || tls_id < 0) return nullptr;
  if (s != g_active.load(std::memory_order_acquire)) return nullptr;
  if (!s->controlled_.load(std::memory_order_acquire)) return nullptr;
  return s;
}

int Scheduler::RegisterCurrentThread(const char* name, bool daemon) {
  std::unique_lock<std::mutex> lk(mu_);
  const int id = static_cast<int>(threads_.size());
  ThreadState state;
  state.name = name;
  state.daemon = daemon;
  state.run = ThreadState::Run::kRunnable;
  threads_.push_back(std::move(state));
  tls_scheduler = this;
  tls_id = id;
  cv_.notify_all();  // wake AwaitRegistered
  if (!controlled_.load(std::memory_order_relaxed)) return id;
  if (current_ == -1) {
    // First thread in (the run's main thread): claim the token.
    current_ = id;
    threads_[id].run = ThreadState::Run::kRunning;
    return id;
  }
  ParkLocked(lk, id);
  return id;
}

void Scheduler::UnregisterCurrentThread() {
  std::unique_lock<std::mutex> lk(mu_);
  const int id = tls_id;
  tls_scheduler = nullptr;
  tls_id = -1;
  if (id < 0 || id >= static_cast<int>(threads_.size())) return;
  threads_[id].run = ThreadState::Run::kExited;
  if (!controlled_.load(std::memory_order_relaxed)) return;
  if (current_ == id) {
    current_ = -1;
    ScheduleNextLocked();
  }
}

int Scheduler::RegisteredCount() {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<int>(threads_.size());
}

void Scheduler::AwaitRegistered(int count) {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] {
    return static_cast<int>(threads_.size()) >= count ||
           !controlled_.load(std::memory_order_relaxed);
  });
}

void Scheduler::Yield(const char* tag, const void* resource, bool is_lock) {
  std::unique_lock<std::mutex> lk(mu_);
  if (!controlled_.load(std::memory_order_relaxed)) return;
  const int id = tls_id;
  ThreadState& self = threads_[id];
  self.pending_tag = tag;
  self.pending_resource = resource;
  self.pending_is_lock = is_lock;

  std::vector<DecisionRecord::Option> options;
  for (int t = 0; t < static_cast<int>(threads_.size()); ++t) {
    const ThreadState& st = threads_[t];
    if (t == id || st.run == ThreadState::Run::kRunnable) {
      options.push_back(DecisionRecord::Option{
          t, st.pending_tag, st.pending_resource, st.pending_is_lock});
    }
  }
  if (options.size() <= 1) return;
  const int chosen = ChooseLocked(options, id);
  if (!controlled_.load(std::memory_order_relaxed) || chosen == id) return;
  self.run = ThreadState::Run::kRunnable;
  current_ = chosen;
  threads_[chosen].run = ThreadState::Run::kRunning;
  cv_.notify_all();
  ParkLocked(lk, id);
}

bool Scheduler::BlockOnMutex(const void* addr) {
  std::unique_lock<std::mutex> lk(mu_);
  if (!controlled_.load(std::memory_order_relaxed)) return false;
  const int id = tls_id;
  ThreadState& self = threads_[id];
  self.run = ThreadState::Run::kBlockedMutex;
  self.wait_addr = addr;
  self.pending_tag = "mutex.lock";
  self.pending_resource = addr;
  self.pending_is_lock = true;
  current_ = -1;
  ScheduleNextLocked();
  ParkLocked(lk, id);
  if (!controlled_.load(std::memory_order_relaxed)) return false;
  self.wait_addr = nullptr;
  return true;
}

void Scheduler::OnMutexRelease(const void* addr) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!controlled_.load(std::memory_order_relaxed)) return;
  for (ThreadState& st : threads_) {
    if (st.run == ThreadState::Run::kBlockedMutex && st.wait_addr == addr) {
      st.run = ThreadState::Run::kRunnable;
      st.wait_addr = nullptr;
    }
  }
}

bool Scheduler::BlockOnCv(const void* cv_addr, bool timed) {
  std::unique_lock<std::mutex> lk(mu_);
  if (!controlled_.load(std::memory_order_relaxed)) return false;
  const int id = tls_id;
  ThreadState& self = threads_[id];
  self.run = ThreadState::Run::kBlockedCv;
  self.wait_addr = cv_addr;
  self.timed = timed;
  self.pending_tag = "cv.wake";
  self.pending_resource = cv_addr;
  self.pending_is_lock = false;
  current_ = -1;
  ScheduleNextLocked();
  ParkLocked(lk, id);
  self.timed = false;
  if (!controlled_.load(std::memory_order_relaxed)) return false;
  self.wait_addr = nullptr;
  return true;
}

void Scheduler::OnCvNotify(const void* cv_addr) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!controlled_.load(std::memory_order_relaxed)) return;
  for (ThreadState& st : threads_) {
    if (st.run == ThreadState::Run::kBlockedCv && st.wait_addr == cv_addr) {
      st.run = ThreadState::Run::kRunnable;
      st.wait_addr = nullptr;
    }
  }
}

void Scheduler::NotePoint(const char* tag, long long value) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!controlled_.load(std::memory_order_relaxed)) return;
  points_.push_back(PointEvent{tag, value, tls_id});
}

void Scheduler::SetReplay(std::vector<int> choices) {
  std::lock_guard<std::mutex> lk(mu_);
  replay_ = std::move(choices);
}

void Scheduler::SetExplorationWindow(bool on) {
  std::lock_guard<std::mutex> lk(mu_);
  window_ = on;
}

void Scheduler::FinishMainAndWait() {
  std::unique_lock<std::mutex> lk(mu_);
  const int id = tls_id;
  tls_scheduler = nullptr;
  tls_id = -1;
  if (id >= 0 && id < static_cast<int>(threads_.size())) {
    threads_[id].run = ThreadState::Run::kExited;
    if (current_ == id) {
      current_ = -1;
      if (controlled_.load(std::memory_order_relaxed)) ScheduleNextLocked();
    }
  }
  cv_.wait(lk, [&] { return !controlled_.load(std::memory_order_relaxed); });
}

std::vector<int> Scheduler::choices() const {
  std::vector<int> out;
  out.reserve(decisions_.size());
  for (const DecisionRecord& d : decisions_) out.push_back(d.chosen);
  return out;
}

int Scheduler::ChooseLocked(
    const std::vector<DecisionRecord::Option>& options, int running) {
  auto enabled = [&](int t) {
    for (const auto& o : options) {
      if (o.thread == t) return true;
    }
    return false;
  };
  const int fallback =
      (running >= 0 && enabled(running)) ? running : options.front().thread;
  if (!window_) return fallback;

  int chosen = fallback;
  if (decision_index_ < replay_.size()) {
    const int forced = replay_[decision_index_];
    if (enabled(forced)) {
      chosen = forced;
    } else {
      diverged_ = true;
    }
  }
  ++decision_index_;
  DecisionRecord record;
  record.options = options;
  record.chosen = chosen;
  record.running = running;
  decisions_.push_back(std::move(record));
  if (static_cast<int>(decisions_.size()) > options_.max_decisions &&
      violation_.empty()) {
    violation_ = "livelock: decision limit (" +
                 std::to_string(options_.max_decisions) + ") exceeded";
    CompleteLocked();
  }
  return chosen;
}

void Scheduler::ScheduleNextLocked() {
  std::vector<DecisionRecord::Option> runnable;
  bool live_non_daemon = false;
  for (int t = 0; t < static_cast<int>(threads_.size()); ++t) {
    const ThreadState& st = threads_[t];
    if (st.run == ThreadState::Run::kRunnable) {
      runnable.push_back(DecisionRecord::Option{
          t, st.pending_tag, st.pending_resource, st.pending_is_lock});
    }
    if (!st.daemon && st.run != ThreadState::Run::kExited) {
      live_non_daemon = true;
    }
  }

  if (runnable.empty()) {
    if (!live_non_daemon) {
      // All non-daemon threads exited, daemons all blocked: the
      // quiescent terminal state. The run is complete.
      CompleteLocked();
      return;
    }
    // Fire the lowest-id timed waiter ("its timeout elapsed") — nothing
    // else can make progress, so the timeout is the only enabled event.
    for (int t = 0; t < static_cast<int>(threads_.size()); ++t) {
      ThreadState& st = threads_[t];
      if (st.run == ThreadState::Run::kBlockedCv && st.timed) {
        st.run = ThreadState::Run::kRunning;
        st.wait_addr = nullptr;
        current_ = t;
        cv_.notify_all();
        return;
      }
    }
    // Live non-daemon threads, nothing runnable, no timeouts: deadlock.
    if (violation_.empty()) {
      std::string report = "deadlock: no runnable thread;";
      for (int t = 0; t < static_cast<int>(threads_.size()); ++t) {
        const ThreadState& st = threads_[t];
        if (st.run == ThreadState::Run::kExited) continue;
        report += " t" + std::to_string(t) + "(" + st.name + ")=" +
                  (st.run == ThreadState::Run::kBlockedMutex ? "mutex"
                                                             : "cv");
      }
      violation_ = report;
    }
    CompleteLocked();
    return;
  }

  int next = runnable.front().thread;
  if (runnable.size() > 1) {
    next = ChooseLocked(runnable, /*running=*/-1);
    if (!controlled_.load(std::memory_order_relaxed)) return;
  }
  current_ = next;
  threads_[next].run = ThreadState::Run::kRunning;
  cv_.notify_all();
}

void Scheduler::CompleteLocked() {
  controlled_.store(false, std::memory_order_release);
  current_ = -1;
  cv_.notify_all();
}

void Scheduler::ParkLocked(std::unique_lock<std::mutex>& lk, int id) {
  cv_.wait(lk, [&] {
    return current_ == id || !controlled_.load(std::memory_order_relaxed);
  });
  if (controlled_.load(std::memory_order_relaxed)) {
    threads_[id].run = ThreadState::Run::kRunning;
  }
}

}  // namespace check
}  // namespace diffindex
