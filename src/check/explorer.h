// Schedule explorer: stateless DFS over the scheduler's choice
// sequences, with sleep-set pruning (DPOR-lite) and an optional
// preemption bound (DESIGN.md §12).
//
// The explorer owns no model knowledge: the caller supplies a RunFn that
// executes one complete run under a fresh Scheduler with the given
// replay prefix and returns the recorded decision trace, any violation,
// and a terminal-state fingerprint. The explorer re-runs with systematically
// mutated prefixes until the bounded space is exhausted or a cap trips.
//
// Branch generation (stateless sleep sets, Godefroid-style): for a run
// executed from prefix P with decisions D, every depth i >= |P| with
// more than one enabled thread spawns one branch per unexplored
// alternative. An alternative is pruned when
//   * its thread is in the sleep set at that depth (its interleavings
//     are covered by an already-generated sibling branch), or
//   * taking it would exceed the preemption bound (alternative != the
//     thread that held the token while that thread is still enabled).
// Sleep sets propagate down the chosen path by independence: two ops are
// independent only when both carry a non-null resource and the resources
// differ (a null resource is conservatively dependent with everything),
// and ops of the same thread are always dependent. Pruning with this
// test is sound: it only drops interleavings whose commuted twin is
// explored from a sibling branch — tests/check/ verifies the terminal
// fingerprint set matches a naive DFS on a small model.
//
// Every generated prefix differs from its parent run at its final
// choice, so all runs are pairwise distinct by construction;
// ExploreResult::schedules_run is an exact distinct-schedule count.

#ifndef DIFFINDEX_CHECK_EXPLORER_H_
#define DIFFINDEX_CHECK_EXPLORER_H_

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "check/scheduler.h"

namespace diffindex {
namespace check {

// Everything the explorer needs to know about one completed run.
struct RunOutcome {
  std::vector<DecisionRecord> decisions;
  // "" when the run satisfied every invariant; otherwise a one-line
  // report (scheduler deadlock/livelock, or an oracle violation).
  std::string violation;
  // Hash of the terminal state (model-defined); used by the
  // pruning-soundness test to compare explored state sets.
  uint64_t fingerprint = 0;
  // A replayed choice was not enabled — the model is nondeterministic.
  bool diverged = false;
};

// Executes one run forcing the first `prefix.size()` decisions.
using RunFn = std::function<RunOutcome(const std::vector<int>& prefix)>;

struct ExploreOptions {
  // Hard cap on runs; hitting it sets ExploreResult::hit_schedule_cap.
  int max_schedules = 2000;
  // Max preemptive context switches per schedule; -1 = unbounded.
  int preemption_bound = -1;
  // Sleep-set pruning on/off (off = naive DFS, for the soundness test).
  bool use_sleep_sets = true;
  // Wall-clock budget in milliseconds; 0 = unbounded.
  int time_budget_ms = 0;
  // Stop at the first violating run (default). Off for exhaustive
  // exploration (the soundness test wants the full state set).
  bool stop_on_violation = true;
};

struct ExploreResult {
  // Distinct schedules executed (exact — see header comment).
  int schedules_run = 0;
  bool hit_schedule_cap = false;
  bool hit_time_cap = false;
  // First violating run: the report and its full choice sequence (feed
  // to Scheduler::SetReplay, or print via FormatSchedule for the chaos
  // harness to replay).
  std::string first_violation;
  std::vector<int> violating_choices;
  int violations = 0;
  // Distinct terminal-state fingerprints across all runs.
  std::set<uint64_t> fingerprints;
  int divergences = 0;
  // Deepest decision sequence seen (exploration-depth telemetry).
  int max_depth = 0;
};

ExploreResult Explore(const ExploreOptions& options, const RunFn& run);

}  // namespace check
}  // namespace diffindex

#endif  // DIFFINDEX_CHECK_EXPLORER_H_
