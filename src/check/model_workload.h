// Model workload: one bounded, deterministic run of a real single-server
// cluster under the cooperative scheduler (DESIGN.md §12). This is the
// RunFn the explorer drives: same ModelOptions + same replay prefix =
// the same interleaving, bit for bit.
//
// Shape of a run:
//   1. main registers with a fresh Scheduler and builds a 1-server /
//      1-region cluster (1 AUQ worker, zero backoff/delay) with the
//      exploration window OFF — setup is not branched over.
//   2. `num_writers` driver threads register (ids are deterministic:
//      main spawns, then AwaitRegistered before handing the token over)
//      and issue `ops_per_writer` puts each through the public client.
//   3. main turns the window ON and calls FinishMainAndWait: from here
//      every CHECK_YIELD with >1 enabled thread is a recorded decision.
//   4. the run terminates at quiescence (writers exited, AUQ drained and
//      its worker parked); the scheduler flips to release mode and the
//      invariant oracle (check/oracle.h) inspects the terminal state.
//
// Inline consistency checks made by the writers themselves (only
// meaningful on disjoint rows, where no other writer can overwrite):
//   * sync-full:     GetByIndex immediately after the put must contain
//                    the writer's row (causal read, §4.1).
//   * async-session: SessionGetByIndex after SessionPut must contain the
//                    writer's row (read-your-writes, §5.2).

#ifndef DIFFINDEX_CHECK_MODEL_WORKLOAD_H_
#define DIFFINDEX_CHECK_MODEL_WORKLOAD_H_

#include <vector>

#include "check/explorer.h"
#include "check/schedule.h"
#include "cluster/catalog.h"

namespace diffindex {
namespace check {

struct ModelOptions {
  IndexScheme scheme = IndexScheme::kAsyncSimple;
  // AUQ coalescing drain width (PR 4's batched hot path); 1 = classic.
  int drain_batch_size = 1;
  int num_writers = 2;
  int ops_per_writer = 2;
  // true: all writers hammer one row (maximal retraction/coalescing
  // interference). false: one row per writer (enables inline checks).
  bool same_row = true;
  // The last writer flushes the table after its puts, exercising the
  // pause-&-drain gate and the drained-depth oracle point.
  bool flush_after_writes = false;
  // WAL group-commit ticket path (leader election under wal_sync_mu_).
  bool group_commit = false;
  // Spawn one concurrent reader driving paged scatter-gather scans with
  // batched read-repair (query/engine.h) against the writers — the
  // sync-insert verify-then-clean race (CHECK_YIELD "query.repair").
  bool scan_reader = false;
  // Decision-count livelock guard per run.
  int max_decisions = 50000;
};

// Executes one run with the first `replay.size()` decisions forced.
RunOutcome RunModel(const ModelOptions& options,
                    const std::vector<int>& replay);

// Adapter binding `options` so Explore() varies only the prefix.
RunFn ModelRunner(const ModelOptions& options);

// Schedule-string bridge (check/schedule.h): a "check:" string carries
// the model configuration plus the decision sequence, so a failing
// checker run prints a string the chaos harness can replay — exactly in
// a DIFFINDEX_CHECK build, or as an uncontrolled sanitizer stress
// re-run of the same model otherwise.
Schedule ToSchedule(const ModelOptions& options,
                    const std::vector<int>& choices);
bool FromSchedule(const Schedule& schedule, ModelOptions* options,
                  std::vector<int>* choices);

}  // namespace check
}  // namespace diffindex

#endif  // DIFFINDEX_CHECK_MODEL_WORKLOAD_H_
