#include "check/explorer.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace diffindex {
namespace check {
namespace {

using Op = DecisionRecord::Option;

// Independence for sleep-set propagation. Conservative: prune only when
// both ops name a resource and the resources differ; everything else is
// treated as dependent (never pruned on).
bool Independent(const Op& a, const Op& b) {
  if (a.thread == b.thread) return false;
  if (a.resource == nullptr || b.resource == nullptr) return false;
  return a.resource != b.resource;
}

bool SleepContains(const std::vector<Op>& sleep, int thread) {
  for (const Op& o : sleep) {
    if (o.thread == thread) return true;
  }
  return false;
}

const Op* FindOption(const DecisionRecord& d, int thread) {
  for (const Op& o : d.options) {
    if (o.thread == thread) return &o;
  }
  return nullptr;
}

// A decision is preemptive when the token holder was still enabled but
// the choice moved the token elsewhere. `running` is -1 at give-up
// points (block/exit), which are never preemptions.
bool IsPreemption(const DecisionRecord& d, int choice) {
  return d.running >= 0 && choice != d.running &&
         FindOption(d, d.running) != nullptr;
}

struct Branch {
  std::vector<int> prefix;
  // Sleep set valid at depth prefix.size() — the parent already
  // propagated it past the branch's forced final choice.
  std::vector<Op> sleep;
};

}  // namespace

ExploreResult Explore(const ExploreOptions& options, const RunFn& run) {
  ExploreResult result;
  const auto start = std::chrono::steady_clock::now();
  auto out_of_time = [&] {
    if (options.time_budget_ms <= 0) return false;
    const auto elapsed = std::chrono::steady_clock::now() - start;
    return elapsed >= std::chrono::milliseconds(options.time_budget_ms);
  };

  std::vector<Branch> stack;
  stack.push_back(Branch{});  // the unconstrained first run

  while (!stack.empty()) {
    if (result.schedules_run >= options.max_schedules) {
      result.hit_schedule_cap = true;
      break;
    }
    if (out_of_time()) {
      result.hit_time_cap = true;
      break;
    }
    Branch branch = std::move(stack.back());
    stack.pop_back();

    RunOutcome out = run(branch.prefix);
    ++result.schedules_run;
    result.max_depth =
        std::max(result.max_depth, static_cast<int>(out.decisions.size()));
    result.fingerprints.insert(out.fingerprint);
    if (out.diverged) {
      // The prefix did not reproduce the parent's interleaving — the
      // model is nondeterministic. Branching further from this trace
      // would chase ghosts; surface the count instead.
      ++result.divergences;
      continue;
    }
    if (!out.violation.empty()) {
      ++result.violations;
      if (result.first_violation.empty()) {
        result.first_violation = out.violation;
        result.violating_choices.reserve(out.decisions.size());
        for (const DecisionRecord& d : out.decisions) {
          result.violating_choices.push_back(d.chosen);
        }
      }
      if (options.stop_on_violation) break;
    }

    const std::vector<DecisionRecord>& ds = out.decisions;
    const size_t base = branch.prefix.size();
    if (ds.size() < base) continue;  // run ended inside the prefix

    // Cumulative preemption count along the chosen path.
    std::vector<int> preemptions(ds.size() + 1, 0);
    for (size_t i = 0; i < ds.size(); ++i) {
      preemptions[i + 1] =
          preemptions[i] + (IsPreemption(ds[i], ds[i].chosen) ? 1 : 0);
    }

    std::vector<Op> sleep = branch.sleep;
    // Branches extend the actually-chosen trace (identical to
    // branch.prefix over the forced region, since the run didn't
    // diverge).
    std::vector<int> chosen_prefix;
    chosen_prefix.reserve(ds.size());
    for (const DecisionRecord& d : ds) chosen_prefix.push_back(d.chosen);

    for (size_t i = base; i < ds.size(); ++i) {
      const DecisionRecord& d = ds[i];
      const Op* chosen_op = FindOption(d, d.chosen);
      std::vector<Op> earlier;  // siblings already generated at depth i
      for (const Op& alt : d.options) {
        if (alt.thread == d.chosen) continue;
        if (options.use_sleep_sets && SleepContains(sleep, alt.thread)) {
          continue;
        }
        if (options.preemption_bound >= 0) {
          const int p =
              preemptions[i] + (IsPreemption(d, alt.thread) ? 1 : 0);
          if (p > options.preemption_bound) continue;
        }
        Branch nb;
        nb.prefix.assign(chosen_prefix.begin(),
                         chosen_prefix.begin() + static_cast<long>(i));
        nb.prefix.push_back(alt.thread);
        if (options.use_sleep_sets) {
          // The new branch need not re-explore the already-covered
          // chosen op or its earlier siblings first — they stay asleep
          // until a dependent op wakes them.
          nb.sleep = sleep;
          if (chosen_op != nullptr) {
            std::vector<Op> filtered;
            filtered.reserve(nb.sleep.size() + 1 + earlier.size());
            nb.sleep.push_back(*chosen_op);
            for (const Op& e : earlier) nb.sleep.push_back(e);
            // Propagate past the branch's own first step: drop sleepers
            // dependent with `alt`.
            for (const Op& o : nb.sleep) {
              if (Independent(o, alt)) filtered.push_back(o);
            }
            nb.sleep = std::move(filtered);
          }
        }
        earlier.push_back(alt);
        stack.push_back(std::move(nb));
      }
      // Propagate the sleep set past the chosen op: dependent sleepers
      // wake up (they must be explored below this point).
      if (chosen_op != nullptr) {
        std::vector<Op> next;
        next.reserve(sleep.size());
        for (const Op& o : sleep) {
          if (Independent(o, *chosen_op)) next.push_back(o);
        }
        sleep = std::move(next);
      }
    }
  }
  return result;
}

}  // namespace check
}  // namespace diffindex
