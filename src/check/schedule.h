// Replayable-schedule strings: the one wire format shared by the chaos
// harness (tests/fault/) and the concurrency model checker (src/check/).
//
// A schedule string is
//
//   <kind>:k1=v1;k2=v2;...;choices=3,1,0,2
//
// where <kind> names the interpreter ("chaos" for a seeded chaos
// schedule, "check" for a model-checker interleaving), the key=value
// fields carry the run configuration (seed, scheme, bounds, model name),
// and the optional `choices` field is the decision sequence a
// cooperative Scheduler replays verbatim. Keys and values must not
// contain ';' or '='; choices are non-negative thread ids.
//
// The point of one format is the failure workflow: a failing checker run
// prints a "check:" string, and tests/fault/ can replay it — exactly
// (same choices) in a DIFFINDEX_CHECK build, or as a sanitizer stress
// re-run of the same model + scheme in a plain ASan/TSan build. A
// failing chaos run prints a "chaos:" string replayable bit-for-bit from
// its seed. Both go through ParseSchedule below.

#ifndef DIFFINDEX_CHECK_SCHEDULE_H_
#define DIFFINDEX_CHECK_SCHEDULE_H_

#include <string>
#include <utility>
#include <vector>

namespace diffindex {
namespace check {

struct Schedule {
  std::string kind;  // "chaos" or "check"
  // Preserves insertion order so Format(Parse(s)) == s.
  std::vector<std::pair<std::string, std::string>> fields;
  std::vector<int> choices;

  bool has(const std::string& key) const;
  // Returns the field value, or `fallback` when absent.
  std::string get(const std::string& key,
                  const std::string& fallback = "") const;
  // Integer accessor; returns `fallback` on absence or parse failure.
  long long get_int(const std::string& key, long long fallback = 0) const;
  void set(const std::string& key, const std::string& value);
  void set_int(const std::string& key, long long value);
};

// Serializes to the canonical string form shown above. `choices` is
// emitted last, and only when non-empty.
std::string FormatSchedule(const Schedule& schedule);

// Parses a schedule string. Returns false (and fills *error) on
// malformed input: missing kind, bad key=value syntax, or a non-integer
// choice. On success *out is fully replaced.
bool ParseSchedule(const std::string& text, Schedule* out,
                   std::string* error);

}  // namespace check
}  // namespace diffindex

#endif  // DIFFINDEX_CHECK_SCHEDULE_H_
