// CHECK_YIELD instrumentation: the seam markers the model checker
// branches on. Safe to include from any layer — every macro compiles to
// nothing unless the build sets DIFFINDEX_CHECK=ON, so production code
// pays zero cost and keeps zero dependencies on src/check/.
//
// Placement rules (DESIGN.md §12): put a CHECK_YIELD immediately BEFORE
// an operation whose interleaving against other threads matters — an
// enqueue becoming visible, a coalesce decision, a flush barrier, a WAL
// ticket step, a cache populate. Use CHECK_YIELD_RES when the operation
// is wholly about one shared resource (pass its address): the explorer
// treats ops on distinct resources as independent and prunes, ops with a
// null resource as dependent-with-everything (sound but unpruned).
//
//   CHECK_YIELD("auq.enqueue");                  // decision point
//   CHECK_YIELD_RES("auq.coalesce", &mu_);       // resource-scoped
//   CHECK_POINT_VAL("rs.flush.drained_depth", hooks_->QueueDepth());
//
// CHECK_POINT_VAL records a (tag, value) event for the invariant oracle
// without yielding — e.g. the AUQ depth observed at the flush drain
// barrier, which must be 0 on every explored schedule (§5.3).

#ifndef DIFFINDEX_CHECK_YIELD_H_
#define DIFFINDEX_CHECK_YIELD_H_

#ifdef DIFFINDEX_CHECK

#include "check/scheduler.h"

namespace diffindex {
namespace check {

inline void YieldPoint(const char* tag, const void* resource) {
  Scheduler* s = Scheduler::CurrentIfControlled();
  if (s != nullptr) s->Yield(tag, resource, resource != nullptr);
}

inline void NotePointVal(const char* tag, long long value) {
  Scheduler* s = Scheduler::CurrentIfControlled();
  if (s != nullptr) s->NotePoint(tag, value);
}

// RAII registration for long-lived worker threads (AUQ workers):
// registers as a daemon on construction when a scheduler is active,
// unregisters on destruction. Daemons do not block run completion —
// a run is done when non-daemons exited and daemons are parked.
class ScopedDaemonRegistration {
 public:
  explicit ScopedDaemonRegistration(const char* name) {
    Scheduler* s = Scheduler::Active();
    if (s != nullptr) {
      registered_ = true;
      s->RegisterCurrentThread(name, /*daemon=*/true);
      scheduler_ = s;
    }
  }
  ~ScopedDaemonRegistration() {
    if (registered_) scheduler_->UnregisterCurrentThread();
  }
  ScopedDaemonRegistration(const ScopedDaemonRegistration&) = delete;
  ScopedDaemonRegistration& operator=(const ScopedDaemonRegistration&) =
      delete;

 private:
  bool registered_ = false;
  Scheduler* scheduler_ = nullptr;
};

// Spawn-side handshake: snapshot the registered count before spawning N
// threads, then block until all N have registered so thread ids are
// assigned deterministically. No-ops without an active scheduler.
inline int RegisteredCountIfActive() {
  Scheduler* s = Scheduler::Active();
  return s != nullptr ? s->RegisteredCount() : 0;
}

inline void AwaitRegisteredIfActive(int count) {
  Scheduler* s = Scheduler::Active();
  if (s != nullptr) s->AwaitRegistered(count);
}

}  // namespace check
}  // namespace diffindex

#define CHECK_YIELD(tag) ::diffindex::check::YieldPoint((tag), nullptr)
#define CHECK_YIELD_RES(tag, res) ::diffindex::check::YieldPoint((tag), (res))
#define CHECK_POINT_VAL(tag, value) \
  ::diffindex::check::NotePointVal((tag), (long long)(value))
#define CHECK_REGISTER_DAEMON(name) \
  ::diffindex::check::ScopedDaemonRegistration diffindex_check_reg_(name)
#define CHECK_SPAWN_SNAPSHOT() ::diffindex::check::RegisteredCountIfActive()
#define CHECK_AWAIT_REGISTERED(count) \
  ::diffindex::check::AwaitRegisteredIfActive(count)

#else  // !DIFFINDEX_CHECK

// No-ops; arguments are NOT evaluated.
#define CHECK_YIELD(tag) \
  do {                   \
  } while (0)
#define CHECK_YIELD_RES(tag, res) \
  do {                            \
  } while (0)
#define CHECK_POINT_VAL(tag, value) \
  do {                              \
  } while (0)
#define CHECK_REGISTER_DAEMON(name) \
  do {                              \
  } while (0)
#define CHECK_SPAWN_SNAPSHOT() 0
// `count` is evaluated (it references the snapshot variable, which would
// otherwise be unused in a non-check build).
#define CHECK_AWAIT_REGISTERED(count) \
  do {                                \
    (void)(count);                    \
  } while (0)

#endif  // DIFFINDEX_CHECK

#endif  // DIFFINDEX_CHECK_YIELD_H_
