#include "check/oracle.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>
#include <string>

#include "core/index_codec.h"
#include "util/timestamp_oracle.h"

namespace diffindex {
namespace check {
namespace {

struct IndexEntry {
  std::string value;
  std::string base_row;
  Timestamp ts = 0;

  bool operator<(const IndexEntry& other) const {
    if (value != other.value) return value < other.value;
    if (base_row != other.base_row) return base_row < other.base_row;
    return ts < other.ts;
  }
};

uint64_t FnvMix(uint64_t h, const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t FnvMixString(uint64_t h, const std::string& s) {
  h = FnvMix(h, s.data(), s.size());
  return FnvMix(h, "\0", 1);  // length delimiter
}

}  // namespace

OracleReport CheckTerminalState(const OracleInput& input) {
  OracleReport report;
  report.fingerprint = 1469598103934665603ULL;  // FNV offset basis
  auto fail = [&](std::string v) {
    if (report.violation.empty()) report.violation = std::move(v);
  };

  IndexDescriptor index;
  Status s =
      input.client->reader()->FindIndex(input.table, input.index_name, &index);
  if (!s.ok()) {
    fail("oracle: FindIndex failed: " + s.ToString());
    return report;
  }

  // Raw scan of the index table per candidate value — no read-repair, no
  // filtering: exactly what is physically in the index.
  std::set<IndexEntry> entries;
  for (const std::string& value : input.values) {
    std::vector<ScannedRow> rows;
    s = input.client->raw_client()->ScanRows(
        index.index_table, IndexScanStartForValue(value),
        IndexScanEndForValue(value), kMaxTimestamp, 0, &rows);
    if (!s.ok()) {
      fail("oracle: index scan failed: " + s.ToString());
      return report;
    }
    for (const ScannedRow& row : rows) {
      IndexEntry entry;
      std::string value_encoded;
      if (!DecodeIndexRow(row.row, &value_encoded, &entry.base_row)) continue;
      entry.value = value_encoded;
      for (const RowCell& cell : row.cells) entry.ts = cell.ts;
      entries.insert(std::move(entry));
    }
  }

  // Live base state at "now".
  std::map<std::string, std::pair<std::string, Timestamp>> base;
  for (const std::string& row : input.rows) {
    std::string value;
    Timestamp ts = 0;
    s = input.client->raw_client()->GetCell(input.table, row, input.column,
                                            kMaxTimestamp, &value, &ts);
    if (s.ok()) {
      base[row] = {value, ts};
    } else if (!s.IsNotFound()) {
      fail("oracle: base read failed: " + s.ToString());
      return report;
    }
  }

  // no-lost: every live base pair is indexed. Quiescence (the scheduler's
  // terminal condition) guarantees the AUQ has drained, so even the async
  // schemes must have converged by now.
  for (const auto& [row, vt] : base) {
    bool found = false;
    for (const IndexEntry& e : entries) {
      if (e.base_row == row && e.value == vt.first) {
        found = true;
        break;
      }
    }
    if (!found) {
      fail("no-lost: base " + row + "=" + vt.first + "@" +
           std::to_string(vt.second) + " has no index entry");
    }
  }

  // no-phantom: every index entry maps back to the live base value.
  // Sync-insert leaves stale entries by design (cleaned by Algorithm 2's
  // read-repair), so it is exempt.
  if (input.scheme != IndexScheme::kSyncInsert) {
    for (const IndexEntry& e : entries) {
      auto it = base.find(e.base_row);
      if (it == base.end() || it->second.first != e.value) {
        fail("no-phantom: index entry (" + e.value + ", " + e.base_row +
             ")@" + std::to_string(e.ts) + " has no live base row");
      }
    }
  }

  // Timestamp rule (§4.3): the entry's timestamp pins the base version it
  // indexes — a base read AT that timestamp returns that exact version.
  // Holds for stale sync-insert entries too (the version existed at T).
  for (const IndexEntry& e : entries) {
    if (e.ts == 0) continue;  // scan returned no cell timestamp
    std::string value;
    Timestamp version_ts = 0;
    s = input.client->raw_client()->GetCell(input.table, e.base_row,
                                            input.column, e.ts, &value,
                                            &version_ts);
    if (!s.ok() || version_ts != e.ts || value != e.value) {
      fail("timestamp-rule: entry (" + e.value + ", " + e.base_row + ")@" +
           std::to_string(e.ts) + " does not pin base version @" +
           std::to_string(e.ts) + " (got " +
           (s.ok() ? value + "@" + std::to_string(version_ts)
                   : s.ToString()) +
           ")");
    }
  }

  // Drain-before-flush (§5.3): the AUQ depth observed at every flush
  // drain barrier must be 0.
  if (input.points != nullptr) {
    for (const Scheduler::PointEvent& p : *input.points) {
      if (std::strcmp(p.tag, "rs.flush.drained_depth") == 0 && p.value != 0) {
        fail("drain-before-flush: AUQ depth " + std::to_string(p.value) +
             " at the flush drain barrier");
      }
    }
  }

  // Raw timestamps come from the wall clock and differ between two
  // executions of the *same* interleaving; only their relative order is
  // schedule-determined. Hash dense ranks so equal interleavings get
  // equal fingerprints (the DPOR soundness test compares these sets
  // across explorations).
  std::map<Timestamp, uint64_t> ts_rank;
  for (const IndexEntry& e : entries) ts_rank[e.ts];
  for (const auto& [row, vt] : base) ts_rank[vt.second];
  uint64_t next_rank = 0;
  for (auto& [ts, rank] : ts_rank) rank = next_rank++;

  for (const IndexEntry& e : entries) {
    report.fingerprint = FnvMixString(report.fingerprint, e.value);
    report.fingerprint = FnvMixString(report.fingerprint, e.base_row);
    const uint64_t rank = ts_rank[e.ts];
    report.fingerprint = FnvMix(report.fingerprint, &rank, sizeof(rank));
  }
  for (const auto& [row, vt] : base) {
    report.fingerprint = FnvMixString(report.fingerprint, row);
    report.fingerprint = FnvMixString(report.fingerprint, vt.first);
    const uint64_t rank = ts_rank[vt.second];
    report.fingerprint = FnvMix(report.fingerprint, &rank, sizeof(rank));
  }
  return report;
}

}  // namespace check
}  // namespace diffindex
