#include "check/schedule.h"

#include <cstdlib>
#include <sstream>

namespace diffindex {
namespace check {

bool Schedule::has(const std::string& key) const {
  for (const auto& kv : fields) {
    if (kv.first == key) return true;
  }
  return false;
}

std::string Schedule::get(const std::string& key,
                          const std::string& fallback) const {
  for (const auto& kv : fields) {
    if (kv.first == key) return kv.second;
  }
  return fallback;
}

long long Schedule::get_int(const std::string& key,
                            long long fallback) const {
  for (const auto& kv : fields) {
    if (kv.first == key) {
      char* end = nullptr;
      const long long v = std::strtoll(kv.second.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || end == kv.second.c_str()) {
        return fallback;
      }
      return v;
    }
  }
  return fallback;
}

void Schedule::set(const std::string& key, const std::string& value) {
  for (auto& kv : fields) {
    if (kv.first == key) {
      kv.second = value;
      return;
    }
  }
  fields.emplace_back(key, value);
}

void Schedule::set_int(const std::string& key, long long value) {
  set(key, std::to_string(value));
}

std::string FormatSchedule(const Schedule& schedule) {
  std::ostringstream out;
  out << schedule.kind << ":";
  bool first = true;
  for (const auto& kv : schedule.fields) {
    if (!first) out << ";";
    first = false;
    out << kv.first << "=" << kv.second;
  }
  if (!schedule.choices.empty()) {
    if (!first) out << ";";
    out << "choices=";
    for (size_t i = 0; i < schedule.choices.size(); ++i) {
      if (i) out << ",";
      out << schedule.choices[i];
    }
  }
  return out.str();
}

namespace {

bool ParseChoices(const std::string& value, std::vector<int>* out,
                  std::string* error) {
  out->clear();
  if (value.empty()) return true;
  size_t pos = 0;
  while (pos <= value.size()) {
    size_t comma = value.find(',', pos);
    if (comma == std::string::npos) comma = value.size();
    const std::string tok = value.substr(pos, comma - pos);
    char* end = nullptr;
    const long v = std::strtol(tok.c_str(), &end, 10);
    if (tok.empty() || end == nullptr || *end != '\0' || v < 0) {
      *error = "bad choice token: '" + tok + "'";
      return false;
    }
    out->push_back(static_cast<int>(v));
    pos = comma + 1;
    if (comma == value.size()) break;
  }
  return true;
}

}  // namespace

bool ParseSchedule(const std::string& text, Schedule* out,
                   std::string* error) {
  std::string err_local;
  if (error == nullptr) error = &err_local;
  const size_t colon = text.find(':');
  if (colon == std::string::npos || colon == 0) {
    *error = "missing '<kind>:' prefix";
    return false;
  }
  Schedule parsed;
  parsed.kind = text.substr(0, colon);
  size_t pos = colon + 1;
  while (pos < text.size()) {
    size_t semi = text.find(';', pos);
    if (semi == std::string::npos) semi = text.size();
    const std::string field = text.substr(pos, semi - pos);
    if (!field.empty()) {
      const size_t eq = field.find('=');
      if (eq == std::string::npos || eq == 0) {
        *error = "bad field (want key=value): '" + field + "'";
        return false;
      }
      const std::string key = field.substr(0, eq);
      const std::string value = field.substr(eq + 1);
      if (key == "choices") {
        if (!ParseChoices(value, &parsed.choices, error)) return false;
      } else {
        parsed.fields.emplace_back(key, value);
      }
    }
    pos = semi + 1;
  }
  *out = std::move(parsed);
  return true;
}

}  // namespace check
}  // namespace diffindex
