// Compaction: merges several disk stores into one, consolidating the
// multi-versions of each record into a single place (Section 2.1,
// Figure 2c). Garbage-collection policy:
//   * versions masked by a tombstone (ts <= tombstone ts) are dropped;
//   * at most `max_versions` puts per user key are retained;
//   * the tombstone itself is dropped only when `drop_tombstones` is set,
//     i.e. when every store that could contain masked versions is part of
//     this compaction (a major compaction).

#ifndef DIFFINDEX_LSM_COMPACTION_H_
#define DIFFINDEX_LSM_COMPACTION_H_

#include <memory>
#include <string>
#include <vector>

#include "lsm/options.h"
#include "lsm/sstable.h"
#include "util/status.h"

namespace diffindex {

struct CompactionStats {
  uint64_t input_records = 0;
  uint64_t output_records = 0;
  uint64_t dropped_masked = 0;      // masked by tombstones
  uint64_t dropped_versions = 0;    // beyond max_versions
  uint64_t dropped_tombstones = 0;
};

// Merges `inputs` (youngest first) into a new table at `output_path`.
// On success fills *meta and *stats.
Status CompactTables(const LsmOptions& options,
                     const std::vector<std::shared_ptr<SstReader>>& inputs,
                     const std::string& output_path, uint64_t file_number,
                     bool drop_tombstones, SstMeta* meta,
                     CompactionStats* stats);

}  // namespace diffindex

#endif  // DIFFINDEX_LSM_COMPACTION_H_
