// Immutable on-disk store (the HBase "HTable"/HFile analogue).
//
// File layout:
//   data block*      prefix-compressed entries with restart points (see
//                    lsm/block.h), followed by fixed32 masked crc32c
//   filter block     bloom filter over distinct user keys + crc32c
//   index block      per data block: varint klen | last ikey |
//                    fixed64 offset | fixed64 size; + crc32c
//   footer (48 B)    index off/size, filter off/size, entry count, magic
//
// The index and filter are loaded at open (modeling the HFile index and
// BloomFilter the paper counts into its 1.5 KB/row overhead); data blocks
// go through the shared block cache, and a cache miss pays the injected
// random-I/O cost — this is what makes an LSM read "many times slower than
// a write".

#ifndef DIFFINDEX_LSM_SSTABLE_H_
#define DIFFINDEX_LSM_SSTABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lsm/block.h"
#include "lsm/iterator.h"
#include "lsm/memtable.h"
#include "lsm/options.h"
#include "lsm/record.h"
#include "util/env.h"
#include "util/status.h"

namespace diffindex {

struct SstMeta {
  uint64_t file_number = 0;
  uint64_t file_size = 0;
  uint64_t num_entries = 0;
  std::string smallest_user_key;
  std::string largest_user_key;
};

class SstBuilder {
 public:
  SstBuilder(const LsmOptions& options, std::unique_ptr<WritableFile> file);
  ~SstBuilder();

  // Records must arrive in InternalKeyComparator order.
  Status Add(const Slice& internal_key, const Slice& value);

  // Writes filter, index and footer; fills *meta (except file_number).
  Status Finish(SstMeta* meta);

  // Abandons the table (caller removes the file).
  void Abandon() { finished_ = true; }

 private:
  Status FlushDataBlock();

  const LsmOptions options_;
  std::unique_ptr<WritableFile> file_;
  BlockBuilder data_block_;
  std::string index_block_;
  std::string last_key_;   // last internal key added (for index entries)
  uint64_t offset_ = 0;
  uint64_t num_entries_ = 0;
  uint64_t block_first_offset_ = 0;
  std::vector<std::string> filter_user_keys_;  // distinct user keys
  std::string smallest_user_key_;
  std::string largest_user_key_;
  bool finished_ = false;
};

class SstReader {
 public:
  // Loads footer, index and filter into memory.
  static Status Open(const LsmOptions& options, const std::string& path,
                     uint64_t file_number,
                     std::shared_ptr<SstReader>* reader);

  // Newest version of user_key with ts <= read_ts in this table.
  LookupResult Get(const Slice& user_key, Timestamp read_ts) const;

  // Full-table iterator in internal key order.
  std::unique_ptr<RecordIterator> NewIterator() const;

  const SstMeta& meta() const { return meta_; }

  // True if the bloom filter admits the key (or no filter present).
  bool KeyMayMatch(const Slice& user_key) const;

 private:
  class Iter;
  struct IndexEntry {
    std::string last_key;  // last internal key in the block
    uint64_t offset;
    uint64_t size;  // payload size excluding the trailing crc
  };

  SstReader(const LsmOptions& options, std::string path, uint64_t file_number)
      : options_(options), path_(std::move(path)) {
    meta_.file_number = file_number;
  }

  // Reads (via cache) the data block at index position `block_idx`.
  Status ReadBlock(size_t block_idx,
                   std::shared_ptr<const std::string>* block) const;

  // Index position of the first block whose last key >= target, or
  // index_.size() if none.
  size_t FindBlock(const Slice& target_internal_key) const;

  const LsmOptions options_;
  const std::string path_;
  std::unique_ptr<RandomAccessFile> file_;
  std::vector<IndexEntry> index_;
  std::string filter_;
  SstMeta meta_;
};

// Builds an SSTable from all records produced by `iter` (already in
// internal-key order). On success fills *meta including file_number.
Status BuildSstFromIterator(const LsmOptions& options,
                            const std::string& path, uint64_t file_number,
                            RecordIterator* iter, SstMeta* meta);

}  // namespace diffindex

#endif  // DIFFINDEX_LSM_SSTABLE_H_
