// Data-block format with key prefix compression and restart points,
// matching the classic LevelDB/HFile layout:
//
//   entry   := varint32 shared | varint32 non_shared | varint32 value_len
//              | key_suffix[non_shared] | value[value_len]
//   block   := entry* | fixed32 restart_offset[num_restarts]
//              | fixed32 num_restarts
//
// Every `restart_interval`-th entry stores its full key (shared == 0);
// point lookups binary-search the restart array and scan at most one
// interval. Prefix compression matters here beyond disk savings: index
// tables store value ⊕ rowkey concatenations whose entries share long
// prefixes by construction.

#ifndef DIFFINDEX_LSM_BLOCK_H_
#define DIFFINDEX_LSM_BLOCK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lsm/iterator.h"
#include "lsm/record.h"
#include "util/slice.h"
#include "util/status.h"

namespace diffindex {

class BlockBuilder {
 public:
  explicit BlockBuilder(int restart_interval = 16);

  // Keys must arrive in InternalKeyComparator order.
  void Add(const Slice& key, const Slice& value);

  // Appends the restart array and returns the finished block contents.
  Slice Finish();

  void Reset();

  // Size of the block if Finish() were called now.
  size_t CurrentSizeEstimate() const;
  bool empty() const { return buffer_.empty(); }

 private:
  const int restart_interval_;
  std::string buffer_;
  std::vector<uint32_t> restarts_;
  int counter_ = 0;  // entries since last restart
  std::string last_key_;
  bool finished_ = false;
};

// Immutable parsed block; the contents are shared with the block cache.
class Block {
 public:
  // `contents` must outlive the Block (held via shared_ptr by callers).
  explicit Block(Slice contents);

  bool valid() const { return num_restarts_ >= 0; }

  // Iterator over the block in internal-key order. The returned iterator
  // holds `owner` alive (pass the cache handle).
  std::unique_ptr<RecordIterator> NewIterator(
      std::shared_ptr<const std::string> owner) const;

 private:
  class Iter;

  uint32_t RestartPoint(int index) const;

  Slice data_;        // entries only (restart array excluded)
  Slice full_;        // entries + restart array
  int num_restarts_ = -1;
};

}  // namespace diffindex

#endif  // DIFFINDEX_LSM_BLOCK_H_
