// Iterator over internal records (encoded internal key + value), ordered
// by InternalKeyComparator. Implemented by the memtable, SSTable readers,
// and the merging iterator that combines them.

#ifndef DIFFINDEX_LSM_ITERATOR_H_
#define DIFFINDEX_LSM_ITERATOR_H_

#include "util/slice.h"
#include "util/status.h"

namespace diffindex {

class RecordIterator {
 public:
  virtual ~RecordIterator() = default;

  virtual bool Valid() const = 0;
  virtual void SeekToFirst() = 0;
  // Positions at the first record with internal key >= target.
  virtual void Seek(const Slice& target) = 0;
  virtual void Next() = 0;

  // REQUIRES: Valid(). Slices remain valid until the next mutation of the
  // iterator.
  virtual Slice key() const = 0;
  virtual Slice value() const = 0;

  virtual Status status() const { return Status::OK(); }
};

}  // namespace diffindex

#endif  // DIFFINDEX_LSM_ITERATOR_H_
