// Write-ahead log: length-and-checksum framed records on a single file.
//
// Framing: [masked crc32c of payload : fixed32][payload_len : fixed32][payload].
// A reader stops at the first short or corrupt record (torn tail after a
// crash), which mirrors HBase's WAL replay semantics: everything before
// the tear is recovered, the tear itself is discarded.
//
// The payload format is owned by the caller (the cluster layer logs
// serialized region edits; see cluster/region_server.h).

#ifndef DIFFINDEX_LSM_WAL_H_
#define DIFFINDEX_LSM_WAL_H_

#include <memory>
#include <string>

#include "util/env.h"
#include "util/slice.h"
#include "util/status.h"

namespace diffindex::wal {

enum class SyncMode {
  kNone,         // rely on OS buffering (cost modeled by LatencyModel)
  kEveryRecord,  // fdatasync after each append
  // Group commit: AddRecord itself never syncs (like kNone); the caller
  // batches concurrent writers into a shared Sync() covering all of their
  // appends (see RegionServer::GroupCommitSync).
  kGroupCommit,
};

class Writer {
 public:
  static Status Open(Env* env, const std::string& path, SyncMode sync_mode,
                     std::unique_ptr<Writer>* writer);

  Status AddRecord(const Slice& payload);
  Status Sync();
  Status Close();

  uint64_t bytes_written() const { return bytes_written_; }

 private:
  Writer(std::unique_ptr<WritableFile> file, SyncMode sync_mode)
      : file_(std::move(file)), sync_mode_(sync_mode) {}

  std::unique_ptr<WritableFile> file_;
  SyncMode sync_mode_;
  uint64_t bytes_written_ = 0;
};

class Reader {
 public:
  static Status Open(Env* env, const std::string& path,
                     std::unique_ptr<Reader>* reader);

  // Returns true and fills *payload for each intact record; returns false
  // at end of log (including a torn tail, reported via corruption()).
  bool ReadRecord(std::string* payload);

  // True if reading stopped because of a corrupt/torn record rather than
  // a clean end of file.
  bool corruption() const { return corruption_; }

 private:
  explicit Reader(std::unique_ptr<SequentialFile> file)
      : file_(std::move(file)) {}

  std::unique_ptr<SequentialFile> file_;
  bool corruption_ = false;
  bool eof_ = false;
};

}  // namespace diffindex::wal

#endif  // DIFFINDEX_LSM_WAL_H_
