// Lock-free-read skiplist in the style of LevelDB's SkipList.
//
// Writes must be externally serialized (the LSM tree holds its write mutex
// while inserting — HBase likewise sequences writes within a region).
// Reads require no locking: they only observe fully-initialized nodes
// because next-pointer publication uses release stores.

#ifndef DIFFINDEX_LSM_SKIPLIST_H_
#define DIFFINDEX_LSM_SKIPLIST_H_

#include <atomic>
#include <cassert>
#include <cstdlib>

#include "lsm/arena.h"
#include "util/random.h"

namespace diffindex {

// Comparator: int operator()(const Key& a, const Key& b) const, <0/0/>0.
template <typename Key, class Comparator>
class SkipList {
 public:
  SkipList(Comparator cmp, Arena* arena);

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  // REQUIRES: nothing equal to key is currently in the list; external
  // synchronization among writers.
  void Insert(const Key& key);

  bool Contains(const Key& key) const;

  class Iterator {
   public:
    explicit Iterator(const SkipList* list) : list_(list), node_(nullptr) {}

    bool Valid() const { return node_ != nullptr; }
    const Key& key() const {
      assert(Valid());
      return node_->key;
    }
    void Next() {
      assert(Valid());
      node_ = node_->Next(0);
    }
    void Seek(const Key& target) {
      node_ = list_->FindGreaterOrEqual(target, nullptr);
    }
    void SeekToFirst() { node_ = list_->head_->Next(0); }

   private:
    const SkipList* list_;
    const typename SkipList::Node* node_;
  };

 private:
  static constexpr int kMaxHeight = 12;

  struct Node {
    explicit Node(const Key& k) : key(k) {}

    const Key key;

    Node* Next(int n) const {
      assert(n >= 0);
      return next_[n].load(std::memory_order_acquire);
    }
    void SetNext(int n, Node* x) {
      assert(n >= 0);
      next_[n].store(x, std::memory_order_release);
    }
    Node* NoBarrierNext(int n) const {
      return next_[n].load(std::memory_order_relaxed);
    }
    void NoBarrierSetNext(int n, Node* x) {
      next_[n].store(x, std::memory_order_relaxed);
    }

    // Variable-length: next_[0..height-1]; extra slots allocated inline.
    std::atomic<Node*> next_[1];
  };

  Node* NewNode(const Key& key, int height);
  int RandomHeight();
  bool Equal(const Key& a, const Key& b) const { return compare_(a, b) == 0; }
  bool KeyIsAfterNode(const Key& key, Node* n) const {
    return n != nullptr && compare_(n->key, key) < 0;
  }
  Node* FindGreaterOrEqual(const Key& key, Node** prev) const;

  Comparator const compare_;
  Arena* const arena_;
  Node* const head_;
  std::atomic<int> max_height_;
  Random rnd_;
};

template <typename Key, class Comparator>
SkipList<Key, Comparator>::SkipList(Comparator cmp, Arena* arena)
    : compare_(cmp),
      arena_(arena),
      head_(NewNode(Key(), kMaxHeight)),
      max_height_(1),
      rnd_(0xdeadbeef) {
  for (int i = 0; i < kMaxHeight; i++) {
    head_->SetNext(i, nullptr);
  }
}

template <typename Key, class Comparator>
typename SkipList<Key, Comparator>::Node*
SkipList<Key, Comparator>::NewNode(const Key& key, int height) {
  char* mem = arena_->AllocateAligned(
      sizeof(Node) + sizeof(std::atomic<Node*>) * (height - 1));
  return new (mem) Node(key);
}

template <typename Key, class Comparator>
int SkipList<Key, Comparator>::RandomHeight() {
  constexpr unsigned kBranching = 4;
  int height = 1;
  while (height < kMaxHeight && rnd_.OneIn(kBranching)) {
    height++;
  }
  return height;
}

template <typename Key, class Comparator>
typename SkipList<Key, Comparator>::Node*
SkipList<Key, Comparator>::FindGreaterOrEqual(const Key& key,
                                              Node** prev) const {
  Node* x = head_;
  int level = max_height_.load(std::memory_order_relaxed) - 1;
  for (;;) {
    Node* next = x->Next(level);
    if (KeyIsAfterNode(key, next)) {
      x = next;
    } else {
      if (prev != nullptr) prev[level] = x;
      if (level == 0) return next;
      level--;
    }
  }
}

template <typename Key, class Comparator>
void SkipList<Key, Comparator>::Insert(const Key& key) {
  Node* prev[kMaxHeight];
  Node* x = FindGreaterOrEqual(key, prev);
  assert(x == nullptr || !Equal(key, x->key));

  const int height = RandomHeight();
  int cur_max = max_height_.load(std::memory_order_relaxed);
  if (height > cur_max) {
    for (int i = cur_max; i < height; i++) {
      prev[i] = head_;
    }
    max_height_.store(height, std::memory_order_relaxed);
  }

  x = NewNode(key, height);
  for (int i = 0; i < height; i++) {
    x->NoBarrierSetNext(i, prev[i]->NoBarrierNext(i));
    prev[i]->SetNext(i, x);  // release: publishes the node
  }
}

template <typename Key, class Comparator>
bool SkipList<Key, Comparator>::Contains(const Key& key) const {
  Node* x = FindGreaterOrEqual(key, nullptr);
  return x != nullptr && Equal(key, x->key);
}

}  // namespace diffindex

#endif  // DIFFINDEX_LSM_SKIPLIST_H_
