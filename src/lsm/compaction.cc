#include "lsm/compaction.h"

#include "lsm/merging_iterator.h"
#include "lsm/record.h"

namespace diffindex {

namespace {

// Applies the GC policy on top of a merged iterator.
class GcIterator final : public RecordIterator {
 public:
  GcIterator(std::unique_ptr<RecordIterator> input, int max_versions,
             bool drop_tombstones, CompactionStats* stats)
      : input_(std::move(input)),
        max_versions_(max_versions),
        drop_tombstones_(drop_tombstones),
        stats_(stats) {}

  bool Valid() const override { return valid_; }

  void SeekToFirst() override {
    input_->SeekToFirst();
    ResetKeyState();
    Advance();
  }

  void Seek(const Slice& target) override {
    input_->Seek(target);
    ResetKeyState();
    Advance();
  }

  void Next() override {
    input_->Next();
    Advance();
  }

  Slice key() const override { return input_->key(); }
  Slice value() const override { return input_->value(); }
  Status status() const override { return input_->status(); }

 private:
  void ResetKeyState() {
    current_user_key_.clear();
    has_current_key_ = false;
    tombstone_ts_ = 0;
    has_tombstone_ = false;
    versions_kept_ = 0;
  }

  // Skips records the policy drops; leaves input_ on the next record to
  // emit (or exhausted).
  void Advance() {
    while (input_->Valid()) {
      stats_->input_records++;
      ParsedInternalKey parsed;
      if (!ParseInternalKey(input_->key(), &parsed)) {
        // Skip malformed records defensively.
        input_->Next();
        continue;
      }
      if (!has_current_key_ || parsed.user_key != Slice(current_user_key_)) {
        current_user_key_ = parsed.user_key.ToString();
        has_current_key_ = true;
        has_tombstone_ = false;
        tombstone_ts_ = 0;
        versions_kept_ = 0;
        seen_exact_.clear();
      }

      // Duplicate (key, ts, type) across inputs (idempotent re-delivery):
      // keep only the youngest copy. The merge yields the youngest source
      // first on ties, so any repeat of the same (ts, type) is a dup.
      const uint64_t exact_tag =
          (parsed.ts << 1) | static_cast<uint64_t>(parsed.type);
      bool duplicate = false;
      for (uint64_t tag : seen_exact_) {
        if (tag == exact_tag) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) {
        input_->Next();
        continue;
      }
      seen_exact_.push_back(exact_tag);

      if (has_tombstone_ && parsed.ts <= tombstone_ts_) {
        stats_->dropped_masked++;
        input_->Next();
        continue;
      }

      if (parsed.type == ValueType::kTombstone) {
        has_tombstone_ = true;
        tombstone_ts_ = parsed.ts;
        if (drop_tombstones_) {
          stats_->dropped_tombstones++;
          input_->Next();
          continue;
        }
        valid_ = true;
        stats_->output_records++;
        return;
      }

      if (versions_kept_ >= max_versions_) {
        stats_->dropped_versions++;
        input_->Next();
        continue;
      }
      versions_kept_++;
      valid_ = true;
      stats_->output_records++;
      return;
    }
    valid_ = false;
  }

  std::unique_ptr<RecordIterator> input_;
  const int max_versions_;
  const bool drop_tombstones_;
  CompactionStats* stats_;

  bool valid_ = false;
  std::string current_user_key_;
  bool has_current_key_ = false;
  bool has_tombstone_ = false;
  Timestamp tombstone_ts_ = 0;
  int versions_kept_ = 0;
  std::vector<uint64_t> seen_exact_;
};

}  // namespace

Status CompactTables(const LsmOptions& options,
                     const std::vector<std::shared_ptr<SstReader>>& inputs,
                     const std::string& output_path, uint64_t file_number,
                     bool drop_tombstones, SstMeta* meta,
                     CompactionStats* stats) {
  std::vector<std::unique_ptr<RecordIterator>> children;
  children.reserve(inputs.size());
  for (const auto& table : inputs) {
    children.push_back(table->NewIterator());
  }
  GcIterator gc(NewMergingIterator(std::move(children)), options.max_versions,
                drop_tombstones, stats);
  return BuildSstFromIterator(options, output_path, file_number, &gc, meta);
}

}  // namespace diffindex
