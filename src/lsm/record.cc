#include "lsm/record.h"

#include <cassert>

#include "util/coding.h"

namespace diffindex {

void AppendInternalKey(std::string* dst, const Slice& user_key, Timestamp ts,
                       ValueType type) {
  dst->append(user_key.data(), user_key.size());
  PutFixed64(dst, ts);
  dst->push_back(static_cast<char>(type));
}

std::string MakeInternalKey(const Slice& user_key, Timestamp ts,
                            ValueType type) {
  std::string out;
  out.reserve(user_key.size() + kInternalKeyTrailer);
  AppendInternalKey(&out, user_key, ts, type);
  return out;
}

bool ParseInternalKey(const Slice& internal_key, ParsedInternalKey* result) {
  if (internal_key.size() < kInternalKeyTrailer) return false;
  const size_t user_len = internal_key.size() - kInternalKeyTrailer;
  result->user_key = Slice(internal_key.data(), user_len);
  result->ts = DecodeFixed64(internal_key.data() + user_len);
  const auto type_byte = static_cast<uint8_t>(
      internal_key[internal_key.size() - 1]);
  if (type_byte > static_cast<uint8_t>(ValueType::kPut)) return false;
  result->type = static_cast<ValueType>(type_byte);
  return true;
}

Slice ExtractUserKey(const Slice& internal_key) {
  assert(internal_key.size() >= kInternalKeyTrailer);
  return Slice(internal_key.data(),
               internal_key.size() - kInternalKeyTrailer);
}

int InternalKeyComparator::Compare(const Slice& a, const Slice& b) const {
  ParsedInternalKey pa, pb;
  const bool ok_a = ParseInternalKey(a, &pa);
  const bool ok_b = ParseInternalKey(b, &pb);
  assert(ok_a && ok_b);
  (void)ok_a;
  (void)ok_b;
  int r = pa.user_key.compare(pb.user_key);
  if (r != 0) return r;
  // Newer timestamps sort first.
  if (pa.ts > pb.ts) return -1;
  if (pa.ts < pb.ts) return +1;
  // Tombstone (0) before put (1) at equal timestamp.
  const auto ta = static_cast<uint8_t>(pa.type);
  const auto tb = static_cast<uint8_t>(pb.type);
  if (ta < tb) return -1;
  if (ta > tb) return +1;
  return 0;
}

}  // namespace diffindex
