// In-memory store of an LSM tree (the HBase "MemTable"). Writing into the
// LSM equals an insertion here; at capacity the whole table is flushed to
// an immutable disk store. Multi-versioned: an update adds a new version,
// a delete adds a tombstone (Section 2.1).

#ifndef DIFFINDEX_LSM_MEMTABLE_H_
#define DIFFINDEX_LSM_MEMTABLE_H_

#include <atomic>
#include <memory>
#include <string>

#include "lsm/arena.h"
#include "lsm/iterator.h"
#include "lsm/record.h"
#include "lsm/skiplist.h"
#include "util/slice.h"
#include "util/status.h"

namespace diffindex {

// Outcome of a point lookup against one source (memtable or disk store).
// kDeleted means a tombstone was the newest visible record: the key is
// definitively absent as of the read timestamp and older sources must not
// be consulted.
enum class LookupState { kNotPresent, kFound, kDeleted };

struct LookupResult {
  LookupState state = LookupState::kNotPresent;
  std::string value;
  Timestamp ts = 0;
};

class MemTable {
 public:
  MemTable();

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  // Adds a version. Re-adding an identical (key, ts, type) is a no-op,
  // which gives the idempotency the AUQ recovery protocol relies on.
  // REQUIRES: external write serialization (region-level write lock).
  void Add(const Slice& user_key, Timestamp ts, ValueType type,
           const Slice& value);

  // Newest version of user_key with version-ts <= read_ts, if any.
  LookupResult Get(const Slice& user_key, Timestamp read_ts) const;

  // Iterator over internal records; remains valid as long as the memtable
  // is alive (flush keeps the memtable alive until the SSTable is done).
  std::unique_ptr<RecordIterator> NewIterator() const;

  size_t ApproximateMemoryUsage() const {
    return arena_.MemoryUsage();
  }
  // Bytes of key+value payload added; the flush trigger compares against
  // this (arena usage moves in whole blocks and would over-trigger).
  size_t DataBytes() const {
    return data_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t NumEntries() const {
    return num_entries_.load(std::memory_order_relaxed);
  }
  // The largest version timestamp inserted; used by WAL roll-forward.
  Timestamp MaxTimestamp() const {
    return max_ts_.load(std::memory_order_relaxed);
  }

 private:
  // Entries are arena-allocated buffers:
  //   varint32 internal_key_len | internal_key | varint32 value_len | value
  struct KeyComparator {
    int operator()(const char* a, const char* b) const;
  };
  using Table = SkipList<const char*, KeyComparator>;

  class Iter;

  Arena arena_;
  Table table_;
  std::atomic<uint64_t> num_entries_{0};
  std::atomic<size_t> data_bytes_{0};
  std::atomic<Timestamp> max_ts_{0};
};

}  // namespace diffindex

#endif  // DIFFINDEX_LSM_MEMTABLE_H_
