#include "lsm/lsm_tree.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "fault/failpoint.h"
#include "lsm/merging_iterator.h"
#include "util/logging.h"

namespace diffindex {

namespace {

constexpr char kManifestName[] = "TABLES";
constexpr char kManifestTmpName[] = "TABLES.tmp";

bool HasSstSuffix(const std::string& name) {
  constexpr std::string_view kSuffix = ".sst";
  return name.size() > kSuffix.size() &&
         name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                      kSuffix) == 0;
}

}  // namespace

LsmTree::LsmTree(const LsmOptions& options, std::string dir)
    : options_(options), dir_(std::move(dir)) {}

std::string LsmTree::SstPath(uint64_t file_number) const {
  char buf[32];
  snprintf(buf, sizeof(buf), "%08llu.sst",
           static_cast<unsigned long long>(file_number));
  return dir_ + "/" + buf;
}

Status LsmTree::Open(const LsmOptions& options, const std::string& dir,
                     std::unique_ptr<LsmTree>* tree) {
  DIFFINDEX_RETURN_NOT_OK(options.env->CreateDirIfMissing(dir));
  // NOLINT(diffindex-naked-new): private-ctor factory
  std::unique_ptr<LsmTree> t(new LsmTree(options, dir));
  t->mem_ = std::make_shared<MemTable>();
  DIFFINDEX_RETURN_NOT_OK(t->RecoverManifest());
  *tree = std::move(t);
  return Status::OK();
}

Status LsmTree::RecoverManifest() {
  Env* env = options_.env;
  const std::string manifest_path = dir_ + "/" + kManifestName;

  std::vector<uint64_t> live_files;
  if (env->FileExists(manifest_path)) {
    std::unique_ptr<SequentialFile> file;
    DIFFINDEX_RETURN_NOT_OK(env->NewSequentialFile(manifest_path, &file));
    std::string content;
    char buf[4096];
    for (;;) {
      Slice chunk;
      DIFFINDEX_RETURN_NOT_OK(file->Read(sizeof(buf), &chunk, buf));
      if (chunk.empty()) break;
      content.append(chunk.data(), chunk.size());
    }
    std::istringstream in(content);
    std::string token;
    while (in >> token) {
      if (token == "flushed_ts") {
        Timestamp ts;
        if (!(in >> ts)) return Status::Corruption("manifest: flushed_ts");
        flushed_ts_.store(ts, std::memory_order_release);
      } else if (token == "applied_seq") {
        uint64_t seq;
        if (!(in >> seq)) return Status::Corruption("manifest: applied_seq");
        durable_seq_.store(seq, std::memory_order_release);
        applied_seq_.store(seq, std::memory_order_release);
      } else if (token == "next_file") {
        if (!(in >> next_file_number_)) {
          return Status::Corruption("manifest: next_file");
        }
      } else if (token == "file") {
        uint64_t num;
        if (!(in >> num)) return Status::Corruption("manifest: file");
        live_files.push_back(num);
      } else {
        return Status::Corruption("manifest: unknown token " + token);
      }
    }
  }

  // Newest first (higher file numbers are younger: flushes and compaction
  // outputs always take fresh numbers).
  std::sort(live_files.rbegin(), live_files.rend());
  for (uint64_t num : live_files) {
    std::shared_ptr<SstReader> reader;
    DIFFINDEX_RETURN_NOT_OK(
        SstReader::Open(options_, SstPath(num), num, &reader));
    // Recovery runs before any reader thread exists, but tables_ is
    // GUARDED_BY(state_mu_) and the guard contract stays uniform.
    MutexLock lock(state_mu_);
    tables_.push_back(std::move(reader));
    next_file_number_ = std::max(next_file_number_, num + 1);
  }

  // Remove orphaned .sst files (e.g. a compaction output that was written
  // but never committed to the manifest before a crash).
  std::vector<std::string> children;
  DIFFINDEX_RETURN_NOT_OK(env->GetChildren(dir_, &children));
  for (const auto& name : children) {
    if (!HasSstSuffix(name)) continue;
    const uint64_t num = strtoull(name.c_str(), nullptr, 10);
    if (std::find(live_files.begin(), live_files.end(), num) ==
        live_files.end()) {
      DIFFINDEX_LOG_INFO << "lsm: removing orphan " << dir_ << "/" << name;
      // Best-effort: an orphan that survives is retried on the next open.
      env->RemoveFile(dir_ + "/" + name).IgnoreError();
    }
  }
  return Status::OK();
}

Status LsmTree::WriteManifest() {
  std::ostringstream out;
  out << "flushed_ts " << flushed_ts_.load(std::memory_order_acquire) << "\n";
  out << "applied_seq " << durable_seq_.load(std::memory_order_acquire)
      << "\n";
  out << "next_file " << next_file_number_ << "\n";
  {
    MutexLock lock(state_mu_);
    for (const auto& table : tables_) {
      out << "file " << table->meta().file_number << "\n";
    }
  }
  const std::string tmp_path = dir_ + "/" + kManifestTmpName;
  std::unique_ptr<WritableFile> file;
  DIFFINDEX_RETURN_NOT_OK(options_.env->NewWritableFile(tmp_path, &file));
  DIFFINDEX_RETURN_NOT_OK(file->Append(out.str()));
  // ANALYZER_WAIVE(blocking-under-lock): flush/split hold the gate
  // exclusively to serialize exactly this durable manifest write — that
  // is the gate's job, not an accidental blocking call.
  DIFFINDEX_RETURN_NOT_OK(file->Sync());
  DIFFINDEX_RETURN_NOT_OK(file->Close());
  return options_.env->RenameFile(tmp_path, dir_ + "/" + kManifestName);
}

LsmTree::State LsmTree::CopyState() const {
  MutexLock lock(state_mu_);
  return State{mem_, imm_, tables_};
}

Status LsmTree::Put(const Slice& key, const Slice& value, Timestamp ts) {
  num_puts_.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<MemTable> mem;
  {
    MutexLock lock(state_mu_);
    mem = mem_;
  }
  // ANALYZER_WAIVE(log-before-apply): LsmTree is WAL-agnostic by
  // contract — logging is the caller's job (LogAndApply appends before
  // calling Put), and the replay / local-index callers apply edits
  // that are intentionally not re-logged.
  mem->Add(key, ts, ValueType::kPut, value);
  return Status::OK();
}

Status LsmTree::Delete(const Slice& key, Timestamp ts) {
  num_puts_.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<MemTable> mem;
  {
    MutexLock lock(state_mu_);
    mem = mem_;
  }
  // ANALYZER_WAIVE(log-before-apply): same caller-logs contract as Put.
  mem->Add(key, ts, ValueType::kTombstone, Slice());
  return Status::OK();
}

bool LsmTree::NeedsFlush() const {
  MutexLock lock(state_mu_);
  return mem_->DataBytes() >= options_.memtable_flush_bytes;
}

Status LsmTree::Flush() {
  const auto flush_start = std::chrono::steady_clock::now();
  std::shared_ptr<MemTable> imm;
  uint64_t seq_at_swap;
  {
    MutexLock lock(state_mu_);
    // The caller serializes Flush against Put/Delete, so every edit up to
    // applied_seq_ is in the memtable being swapped out.
    seq_at_swap = applied_seq_.load(std::memory_order_acquire);
    if (mem_->NumEntries() == 0) return Status::OK();
    imm_ = mem_;
    mem_ = std::make_shared<MemTable>();
    imm = imm_;
  }

  const uint64_t file_number = next_file_number_++;
  SstMeta meta;
  auto iter = imm->NewIterator();
  Status build_status =
      fault::FailpointRegistry::Global()->MaybeFail("lsm.flush");
  if (build_status.ok()) {
    build_status = BuildSstFromIterator(options_, SstPath(file_number),
                                        file_number, iter.get(), &meta);
  }
  if (!build_status.ok()) {
    // Put the memtable back so no data is lost; the caller may retry. The
    // caller serializes Flush against Put/Delete, so mem_ is still the empty
    // table installed at swap time and imm can slot straight back in. If a
    // write did race in, keep imm_ readable instead of merging.
    // Best-effort: the half-built store is not in the manifest, so a
    // failed delete just leaves an orphan for the next open to collect.
    options_.env->RemoveFile(SstPath(file_number)).IgnoreError();
    MutexLock lock(state_mu_);
    if (mem_->NumEntries() == 0) {
      mem_ = imm_;
      imm_.reset();
    }
    return build_status;
  }
  meta.file_number = file_number;

  std::shared_ptr<SstReader> reader;
  DIFFINDEX_RETURN_NOT_OK(
      SstReader::Open(options_, SstPath(file_number), file_number, &reader));

  Timestamp flushed = imm->MaxTimestamp();
  {
    MutexLock lock(state_mu_);
    tables_.insert(tables_.begin(), std::move(reader));
    imm_.reset();
  }
  Timestamp prev = flushed_ts_.load(std::memory_order_acquire);
  while (flushed > prev && !flushed_ts_.compare_exchange_weak(
                               prev, flushed, std::memory_order_acq_rel)) {
  }
  durable_seq_.store(seq_at_swap, std::memory_order_release);
  DIFFINDEX_RETURN_NOT_OK(WriteManifest());

  if (options_.metrics != nullptr) {
    options_.metrics->GetCounter("lsm.flush")->Add();
    const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - flush_start)
                            .count();
    options_.metrics->GetHistogram("lsm.flush_micros")
        ->Add(static_cast<uint64_t>(micros));
  }

  int num_tables;
  {
    MutexLock lock(state_mu_);
    num_tables = static_cast<int>(tables_.size());
  }
  if (num_tables >= options_.compaction_trigger) {
    return CompactAll();
  }
  return Status::OK();
}

Status LsmTree::CompactAll() {
  const auto compact_start = std::chrono::steady_clock::now();
  std::vector<std::shared_ptr<SstReader>> inputs;
  {
    MutexLock lock(state_mu_);
    inputs = tables_;
  }
  if (inputs.size() <= 1) return Status::OK();

  const uint64_t file_number = next_file_number_++;
  SstMeta meta;
  CompactionStats stats;
  // All disk stores participate and the memtable only holds newer
  // timestamps, so tombstones can be dropped (major compaction).
  DIFFINDEX_RETURN_NOT_OK(CompactTables(options_, inputs,
                                        SstPath(file_number), file_number,
                                        /*drop_tombstones=*/true, &meta,
                                        &stats));

  std::shared_ptr<SstReader> reader;
  DIFFINDEX_RETURN_NOT_OK(
      SstReader::Open(options_, SstPath(file_number), file_number, &reader));

  std::vector<std::shared_ptr<SstReader>> obsolete;
  {
    MutexLock lock(state_mu_);
    // Tables flushed while we compacted stay in front.
    std::vector<std::shared_ptr<SstReader>> remaining;
    for (const auto& t : tables_) {
      if (std::find(inputs.begin(), inputs.end(), t) == inputs.end()) {
        remaining.push_back(t);
      } else {
        obsolete.push_back(t);
      }
    }
    remaining.push_back(std::move(reader));
    tables_ = std::move(remaining);
  }
  DIFFINDEX_RETURN_NOT_OK(WriteManifest());
  for (const auto& t : obsolete) {
    // Best-effort: inputs already left the manifest; a failed delete
    // leaves an orphan for the next open to collect.
    options_.env->RemoveFile(SstPath(t->meta().file_number)).IgnoreError();
  }
  if (options_.metrics != nullptr) {
    options_.metrics->GetCounter("lsm.compaction")->Add();
    options_.metrics->GetCounter("lsm.compaction.input_records")
        ->Add(stats.input_records);
    options_.metrics->GetCounter("lsm.compaction.output_records")
        ->Add(stats.output_records);
    options_.metrics->GetCounter("lsm.compaction.dropped_masked")
        ->Add(stats.dropped_masked);
    options_.metrics->GetCounter("lsm.compaction.dropped_versions")
        ->Add(stats.dropped_versions);
    options_.metrics->GetCounter("lsm.compaction.dropped_tombstones")
        ->Add(stats.dropped_tombstones);
    const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - compact_start)
                            .count();
    options_.metrics->GetHistogram("lsm.compaction_micros")
        ->Add(static_cast<uint64_t>(micros));
  }
  DIFFINDEX_LOG_DEBUG << "lsm: compacted " << inputs.size() << " stores, "
                      << stats.input_records << " -> "
                      << stats.output_records << " records in " << dir_;
  return Status::OK();
}

Status LsmTree::Get(const Slice& key, Timestamp read_ts, std::string* value,
                    Timestamp* version_ts) {
  num_gets_.fetch_add(1, std::memory_order_relaxed);
  const State state = CopyState();

  LookupResult best;

  auto consider = [&best](const LookupResult& candidate) {
    if (candidate.state == LookupState::kNotPresent) return;
    if (best.state == LookupState::kNotPresent || candidate.ts > best.ts) {
      best = candidate;
    }
  };

  // The memtable (and then imm) hold strictly newer timestamps than disk
  // stores, so for latest-reads a hit there is final; historical reads
  // must merge across every source because compaction mixes ages.
  consider(state.mem->Get(key, read_ts));
  const bool mem_decides =
      read_ts == kMaxTimestamp && best.state != LookupState::kNotPresent;
  if (!mem_decides) {
    bool imm_decides = false;
    if (state.imm != nullptr) {
      consider(state.imm->Get(key, read_ts));
      imm_decides =
          read_ts == kMaxTimestamp && best.state != LookupState::kNotPresent;
    }
    if (!imm_decides) {
      for (const auto& table : state.tables) {
        consider(table->Get(key, read_ts));
      }
    }
  }

  if (best.state != LookupState::kFound) {
    return Status::NotFound();
  }
  *value = std::move(best.value);
  if (version_ts != nullptr) *version_ts = best.ts;
  return Status::OK();
}

std::unique_ptr<RecordIterator> LsmTree::NewInternalIterator(
    const State& state) {
  std::vector<std::unique_ptr<RecordIterator>> children;
  children.push_back(state.mem->NewIterator());
  if (state.imm != nullptr) children.push_back(state.imm->NewIterator());
  for (const auto& table : state.tables) {
    children.push_back(table->NewIterator());
  }
  return NewMergingIterator(std::move(children));
}

Status LsmTree::Scan(const Slice& start, const Slice& end, Timestamp read_ts,
                     size_t limit, std::vector<ScanEntry>* out) {
  out->clear();
  const State state = CopyState();
  auto iter = NewInternalIterator(state);

  const std::string seek_target =
      MakeInternalKey(start, kMaxTimestamp, ValueType::kTombstone);
  iter->Seek(seek_target);

  std::string current_key;
  bool have_current = false;
  bool decided_current = false;

  for (; iter->Valid(); iter->Next()) {
    ParsedInternalKey parsed;
    if (!ParseInternalKey(iter->key(), &parsed)) {
      return Status::Corruption("scan: malformed internal key");
    }
    if (!end.empty() && parsed.user_key.compare(end) >= 0) break;

    if (!have_current || parsed.user_key != Slice(current_key)) {
      current_key = parsed.user_key.ToString();
      have_current = true;
      decided_current = false;
    }
    if (decided_current) continue;           // older version of same key
    if (parsed.ts > read_ts) continue;       // not visible yet

    decided_current = true;  // newest visible version decides the key
    if (parsed.type == ValueType::kPut) {
      out->push_back(ScanEntry{current_key, iter->value().ToString(),
                               parsed.ts});
      if (limit != 0 && out->size() >= limit) break;
    }
    // Tombstone: key absent at read_ts; skip the rest of its versions.
  }
  return iter->status();
}

Status LsmTree::ExportRecords(const Slice& start, const Slice& end,
                              LsmTree* target) {
  const State state = CopyState();
  auto iter = NewInternalIterator(state);
  iter->Seek(MakeInternalKey(start, kMaxTimestamp, ValueType::kTombstone));
  Timestamp last_ts = 0;
  bool last_tombstone = false;
  std::string last_key;
  for (; iter->Valid(); iter->Next()) {
    ParsedInternalKey parsed;
    if (!ParseInternalKey(iter->key(), &parsed)) {
      return Status::Corruption("export: malformed internal key");
    }
    if (!end.empty() && parsed.user_key.compare(end) >= 0) break;
    const bool tomb = parsed.type == ValueType::kTombstone;
    // Collapse idempotent duplicates across sources.
    if (parsed.user_key == Slice(last_key) && parsed.ts == last_ts &&
        tomb == last_tombstone) {
      continue;
    }
    last_key = parsed.user_key.ToString();
    last_ts = parsed.ts;
    last_tombstone = tomb;
    if (tomb) {
      DIFFINDEX_RETURN_NOT_OK(target->Delete(parsed.user_key, parsed.ts));
    } else {
      DIFFINDEX_RETURN_NOT_OK(
          target->Put(parsed.user_key, iter->value(), parsed.ts));
    }
    if (target->NeedsFlush()) {
      DIFFINDEX_RETURN_NOT_OK(target->Flush());
    }
  }
  return iter->status();
}

Status LsmTree::GetVersions(const Slice& key, std::vector<Version>* out) {
  out->clear();
  const State state = CopyState();
  auto iter = NewInternalIterator(state);
  iter->Seek(MakeInternalKey(key, kMaxTimestamp, ValueType::kTombstone));
  Timestamp last_ts = 0;
  bool last_tombstone = false;
  bool first = true;
  for (; iter->Valid(); iter->Next()) {
    ParsedInternalKey parsed;
    if (!ParseInternalKey(iter->key(), &parsed)) {
      return Status::Corruption("versions: malformed internal key");
    }
    if (parsed.user_key != key) break;
    const bool tomb = parsed.type == ValueType::kTombstone;
    // Collapse idempotent duplicates across sources.
    if (!first && parsed.ts == last_ts && tomb == last_tombstone) continue;
    first = false;
    last_ts = parsed.ts;
    last_tombstone = tomb;
    out->push_back(Version{parsed.ts, tomb, iter->value().ToString()});
  }
  return iter->status();
}

size_t LsmTree::MemtableBytes() const {
  MutexLock lock(state_mu_);
  return mem_->ApproximateMemoryUsage();
}

uint64_t LsmTree::MemtableEntries() const {
  MutexLock lock(state_mu_);
  return mem_->NumEntries();
}

int LsmTree::NumDiskStores() const {
  MutexLock lock(state_mu_);
  return static_cast<int>(tables_.size());
}

}  // namespace diffindex
