#include "lsm/sstable.h"

#include <algorithm>
#include <cassert>

#include "fault/failpoint.h"
#include "util/bloom.h"
#include "util/coding.h"
#include "util/crc32c.h"

namespace diffindex {

namespace {

constexpr uint64_t kTableMagic = 0xd1ff1d8e5b10c4f3ull;
constexpr size_t kFooterSize = 48;

void AppendBlockTrailer(std::string* block) {
  PutFixed32(block, crc32c::Mask(crc32c::Value(block->data(), block->size())));
}

Status VerifyAndStripTrailer(std::string* block) {
  if (block->size() < 4) return Status::Corruption("block too small");
  const size_t payload = block->size() - 4;
  const uint32_t expected =
      crc32c::Unmask(DecodeFixed32(block->data() + payload));
  if (crc32c::Value(block->data(), payload) != expected) {
    return Status::Corruption("block checksum mismatch");
  }
  block->resize(payload);
  return Status::OK();
}

}  // namespace

SstBuilder::SstBuilder(const LsmOptions& options,
                       std::unique_ptr<WritableFile> file)
    : options_(options), file_(std::move(file)) {}

SstBuilder::~SstBuilder() = default;

Status SstBuilder::Add(const Slice& internal_key, const Slice& value) {
  assert(!finished_);
  ParsedInternalKey parsed;
  if (!ParseInternalKey(internal_key, &parsed)) {
    return Status::InvalidArgument("malformed internal key");
  }
  if (num_entries_ == 0) {
    smallest_user_key_ = parsed.user_key.ToString();
  }
  largest_user_key_ = parsed.user_key.ToString();

  if (filter_user_keys_.empty() ||
      Slice(filter_user_keys_.back()) != parsed.user_key) {
    filter_user_keys_.push_back(parsed.user_key.ToString());
  }

  data_block_.Add(internal_key, value);
  last_key_.assign(internal_key.data(), internal_key.size());
  num_entries_++;

  if (data_block_.CurrentSizeEstimate() >= options_.block_size) {
    return FlushDataBlock();
  }
  return Status::OK();
}

Status SstBuilder::FlushDataBlock() {
  if (data_block_.empty()) return Status::OK();
  std::string block = data_block_.Finish().ToString();
  data_block_.Reset();
  const uint64_t payload_size = block.size();
  AppendBlockTrailer(&block);
  DIFFINDEX_RETURN_NOT_OK(file_->Append(block));
  if (options_.latency != nullptr) options_.latency->DiskWriteBlock();

  PutVarint32(&index_block_, static_cast<uint32_t>(last_key_.size()));
  index_block_.append(last_key_);
  PutFixed64(&index_block_, block_first_offset_);
  PutFixed64(&index_block_, payload_size);

  offset_ += block.size();
  block_first_offset_ = offset_;
  return Status::OK();
}

Status SstBuilder::Finish(SstMeta* meta) {
  assert(!finished_);
  finished_ = true;
  DIFFINDEX_RETURN_NOT_OK(FlushDataBlock());

  // Filter block.
  const uint64_t filter_offset = offset_;
  std::string filter_block;
  if (options_.bloom_bits_per_key > 0) {
    std::vector<Slice> keys;
    keys.reserve(filter_user_keys_.size());
    for (const auto& k : filter_user_keys_) keys.emplace_back(k);
    BloomFilterPolicy policy(options_.bloom_bits_per_key);
    policy.CreateFilter(keys, &filter_block);
  }
  const uint64_t filter_size = filter_block.size();
  AppendBlockTrailer(&filter_block);
  DIFFINDEX_RETURN_NOT_OK(file_->Append(filter_block));
  offset_ += filter_block.size();

  // Index block.
  const uint64_t index_offset = offset_;
  const uint64_t index_size = index_block_.size();
  AppendBlockTrailer(&index_block_);
  DIFFINDEX_RETURN_NOT_OK(file_->Append(index_block_));
  offset_ += index_block_.size();

  // Footer.
  std::string footer;
  PutFixed64(&footer, index_offset);
  PutFixed64(&footer, index_size);
  PutFixed64(&footer, filter_offset);
  PutFixed64(&footer, filter_size);
  PutFixed64(&footer, num_entries_);
  PutFixed64(&footer, kTableMagic);
  assert(footer.size() == kFooterSize);
  DIFFINDEX_RETURN_NOT_OK(file_->Append(footer));
  offset_ += footer.size();

  DIFFINDEX_RETURN_NOT_OK(file_->Sync());
  DIFFINDEX_RETURN_NOT_OK(file_->Close());

  meta->file_size = offset_;
  meta->num_entries = num_entries_;
  meta->smallest_user_key = smallest_user_key_;
  meta->largest_user_key = largest_user_key_;
  return Status::OK();
}

Status SstReader::Open(const LsmOptions& options, const std::string& path,
                       uint64_t file_number,
                       std::shared_ptr<SstReader>* reader) {
  // NOLINT(diffindex-naked-new): private-ctor factory
  std::shared_ptr<SstReader> r(new SstReader(options, path, file_number));
  DIFFINDEX_RETURN_NOT_OK(
      options.env->NewRandomAccessFile(path, &r->file_));
  const uint64_t file_size = r->file_->Size();
  if (file_size < kFooterSize) {
    return Status::Corruption("sstable too small: " + path);
  }

  char footer_buf[kFooterSize];
  Slice footer;
  DIFFINDEX_RETURN_NOT_OK(r->file_->Read(file_size - kFooterSize, kFooterSize,
                                         &footer, footer_buf));
  if (footer.size() != kFooterSize) {
    return Status::Corruption("short footer read: " + path);
  }
  const uint64_t index_offset = DecodeFixed64(footer.data());
  const uint64_t index_size = DecodeFixed64(footer.data() + 8);
  const uint64_t filter_offset = DecodeFixed64(footer.data() + 16);
  const uint64_t filter_size = DecodeFixed64(footer.data() + 24);
  const uint64_t num_entries = DecodeFixed64(footer.data() + 32);
  const uint64_t magic = DecodeFixed64(footer.data() + 40);
  if (magic != kTableMagic) {
    return Status::Corruption("bad table magic: " + path);
  }

  // Load + verify filter block.
  {
    std::string block(filter_size + 4, '\0');
    Slice result;
    DIFFINDEX_RETURN_NOT_OK(
        r->file_->Read(filter_offset, filter_size + 4, &result, block.data()));
    if (result.size() != filter_size + 4) {
      return Status::Corruption("short filter read: " + path);
    }
    block.resize(result.size());
    DIFFINDEX_RETURN_NOT_OK(VerifyAndStripTrailer(&block));
    r->filter_ = std::move(block);
  }

  // Load + verify + parse index block.
  {
    std::string block(index_size + 4, '\0');
    Slice result;
    DIFFINDEX_RETURN_NOT_OK(
        r->file_->Read(index_offset, index_size + 4, &result, block.data()));
    if (result.size() != index_size + 4) {
      return Status::Corruption("short index read: " + path);
    }
    block.resize(result.size());
    DIFFINDEX_RETURN_NOT_OK(VerifyAndStripTrailer(&block));
    Slice input(block);
    while (!input.empty()) {
      IndexEntry entry;
      Slice key;
      if (!GetLengthPrefixedSlice(&input, &key) ||
          !GetFixed64(&input, &entry.offset) ||
          !GetFixed64(&input, &entry.size)) {
        return Status::Corruption("malformed index entry: " + path);
      }
      entry.last_key = key.ToString();
      r->index_.push_back(std::move(entry));
    }
  }

  r->meta_.file_size = file_size;
  r->meta_.num_entries = num_entries;
  if (!r->index_.empty()) {
    // Recover the key range from the first/last blocks: smallest is the
    // first key of block 0; largest the user key of the last index key.
    std::shared_ptr<const std::string> first_block;
    DIFFINDEX_RETURN_NOT_OK(r->ReadBlock(0, &first_block));
    Block block{Slice(*first_block)};
    auto iter = block.NewIterator(first_block);
    iter->SeekToFirst();
    if (iter->Valid()) {
      r->meta_.smallest_user_key = ExtractUserKey(iter->key()).ToString();
    }
    r->meta_.largest_user_key =
        ExtractUserKey(Slice(r->index_.back().last_key)).ToString();
  }

  *reader = std::move(r);
  return Status::OK();
}

bool SstReader::KeyMayMatch(const Slice& user_key) const {
  if (filter_.empty() || options_.bloom_bits_per_key <= 0) return true;
  BloomFilterPolicy policy(options_.bloom_bits_per_key);
  return policy.KeyMayMatch(user_key, filter_);
}

size_t SstReader::FindBlock(const Slice& target_internal_key) const {
  InternalKeyComparator cmp;
  // Binary search for the first block with last_key >= target.
  size_t lo = 0, hi = index_.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (cmp.Compare(Slice(index_[mid].last_key), target_internal_key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Status SstReader::ReadBlock(size_t block_idx,
                            std::shared_ptr<const std::string>* block) const {
  const IndexEntry& entry = index_[block_idx];
  std::string cache_key;
  if (options_.block_cache != nullptr) {
    // The cache is shared by every tree on a server, so the key must be
    // globally unique: the file path qualifies the per-tree file number.
    cache_key = path_ + ":" + std::to_string(entry.offset);
    auto cached = options_.block_cache->Lookup(cache_key);
    if (cached != nullptr) {
      *block = std::move(cached);
      return Status::OK();
    }
  }

  // Cache miss: one random I/O into the disk store.
  if (options_.latency != nullptr) options_.latency->DiskRead();
  auto owned = std::make_shared<std::string>();
  owned->resize(entry.size + 4);
  Slice result;
  DIFFINDEX_RETURN_NOT_OK(
      file_->Read(entry.offset, entry.size + 4, &result, owned->data()));
  if (result.size() != entry.size + 4) {
    return Status::Corruption("short block read: " + path_);
  }
  owned->resize(result.size());
  DIFFINDEX_RETURN_NOT_OK(VerifyAndStripTrailer(owned.get()));
  if (options_.block_cache != nullptr) {
    options_.block_cache->Insert(cache_key, owned, owned->size());
  }
  *block = std::move(owned);
  return Status::OK();
}

LookupResult SstReader::Get(const Slice& user_key, Timestamp read_ts) const {
  LookupResult result;
  if (!KeyMayMatch(user_key)) return result;
  const std::string target =
      MakeInternalKey(user_key, read_ts, ValueType::kTombstone);
  const size_t block_idx = FindBlock(target);
  if (block_idx >= index_.size()) return result;

  std::shared_ptr<const std::string> block_contents;
  if (!ReadBlock(block_idx, &block_contents).ok()) return result;

  Block block{Slice(*block_contents)};
  auto iter = block.NewIterator(block_contents);
  iter->Seek(target);
  if (!iter->Valid()) return result;

  ParsedInternalKey parsed;
  if (!ParseInternalKey(iter->key(), &parsed)) return result;
  if (parsed.user_key != user_key) return result;  // key not in table
  result.ts = parsed.ts;
  if (parsed.type == ValueType::kTombstone) {
    result.state = LookupState::kDeleted;
  } else {
    result.state = LookupState::kFound;
    result.value = iter->value().ToString();
  }
  return result;
}

class SstReader::Iter final : public RecordIterator {
 public:
  explicit Iter(const SstReader* table) : table_(table) {}

  bool Valid() const override {
    return block_iter_ != nullptr && block_iter_->Valid();
  }

  void SeekToFirst() override {
    block_idx_ = 0;
    if (!LoadBlock()) return;
    block_iter_->SeekToFirst();
    SkipExhaustedBlocks();
  }

  void Seek(const Slice& target) override {
    block_idx_ = table_->FindBlock(target);
    if (!LoadBlock()) return;
    block_iter_->Seek(target);
    SkipExhaustedBlocks();
  }

  void Next() override {
    assert(Valid());
    block_iter_->Next();
    SkipExhaustedBlocks();
  }

  Slice key() const override { return block_iter_->key(); }
  Slice value() const override { return block_iter_->value(); }
  Status status() const override {
    if (!status_.ok()) return status_;
    return block_iter_ != nullptr ? block_iter_->status() : Status::OK();
  }

 private:
  // Opens the block at block_idx_; false at end of table or on error.
  bool LoadBlock() {
    block_iter_.reset();
    if (block_idx_ >= table_->index_.size()) return false;
    std::shared_ptr<const std::string> contents;
    status_ = table_->ReadBlock(block_idx_, &contents);
    if (!status_.ok()) return false;
    Block block{Slice(*contents)};
    block_iter_ = block.NewIterator(std::move(contents));
    return true;
  }

  // If the current block is exhausted, advance to the next non-empty one.
  void SkipExhaustedBlocks() {
    while (block_iter_ != nullptr && !block_iter_->Valid() &&
           block_iter_->status().ok()) {
      block_idx_++;
      if (!LoadBlock()) return;
      block_iter_->SeekToFirst();
    }
  }

  const SstReader* table_;
  size_t block_idx_ = 0;
  std::unique_ptr<RecordIterator> block_iter_;
  Status status_;
};

std::unique_ptr<RecordIterator> SstReader::NewIterator() const {
  return std::make_unique<Iter>(this);
}

Status BuildSstFromIterator(const LsmOptions& options, const std::string& path,
                            uint64_t file_number, RecordIterator* iter,
                            SstMeta* meta) {
  DIFFINDEX_FAILPOINT("lsm.sst_write");
  std::unique_ptr<WritableFile> file;
  DIFFINDEX_RETURN_NOT_OK(options.env->NewWritableFile(path, &file));
  SstBuilder builder(options, std::move(file));
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    DIFFINDEX_RETURN_NOT_OK(builder.Add(iter->key(), iter->value()));
  }
  DIFFINDEX_RETURN_NOT_OK(iter->status());
  DIFFINDEX_RETURN_NOT_OK(builder.Finish(meta));
  meta->file_number = file_number;
  return Status::OK();
}

}  // namespace diffindex
