// Tuning knobs for one LSM tree (one column family of one region).

#ifndef DIFFINDEX_LSM_OPTIONS_H_
#define DIFFINDEX_LSM_OPTIONS_H_

#include <cstddef>
#include <memory>

#include "obs/metrics.h"
#include "util/cache.h"
#include "util/env.h"
#include "util/latency_model.h"

namespace diffindex {

struct LsmOptions {
  Env* env = Env::Default();

  // Injected device costs; nullptr disables injection.
  const LatencyModel* latency = nullptr;

  // Observability sink (may be null): flush/compaction counters,
  // durations and record counts land here (`lsm.*`).
  obs::MetricsRegistry* metrics = nullptr;

  // Shared across trees of one server so the cache size models the HBase
  // block cache (25% of heap in the paper's setup). May be nullptr.
  std::shared_ptr<LruCache> block_cache;

  // Flush the memtable once it holds this many bytes of key+value data.
  size_t memtable_flush_bytes = 4 << 20;

  // Target uncompressed size of one SSTable data block.
  size_t block_size = 4096;

  // Bloom filter bits per key; 0 disables the filter.
  int bloom_bits_per_key = 10;

  // Versions of a cell retained by a major compaction (HBase VERSIONS).
  // Diff-Index needs >= 2 so that RB(k, ts_new - delta) can still see the
  // previous version shortly after an update.
  int max_versions = 3;

  // Trigger a (minor) merge compaction when a region has this many
  // on-disk stores.
  int compaction_trigger = 6;
};

}  // namespace diffindex

#endif  // DIFFINDEX_LSM_OPTIONS_H_
