// LsmTree: one log-structured-merge tree (the storage of one region of one
// table). Mirrors the abstract LSM model of Section 2.1:
//
//   * writes insert versioned records into the memtable; an update is a
//     put with a newer timestamp, a delete writes a tombstone;
//   * at capacity the memtable is flushed to an immutable disk store;
//   * reads consult the memtable and all disk stores;
//   * disk stores are periodically compacted into one.
//
// Durability is the owner's job: the RegionServer appends every edit to
// its shared write-ahead log *before* calling Put/Delete here, and uses
// flushed_ts() to decide which WAL entries still need replay after a crash
// (WAL roll-forward).
//
// Threading contract: Put/Delete/Flush/Compact* must be serialized by the
// caller (HBase sequences writes within a region); Get/Scan are safe from
// any thread at any time and never block behind writes or flushes.

#ifndef DIFFINDEX_LSM_LSM_TREE_H_
#define DIFFINDEX_LSM_LSM_TREE_H_

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "lsm/compaction.h"
#include "lsm/memtable.h"
#include "lsm/options.h"
#include "lsm/sstable.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace diffindex {

class LsmTree {
 public:
  // Opens (or creates) the tree persisted in `dir`, recovering the set of
  // live disk stores from the manifest.
  static Status Open(const LsmOptions& options, const std::string& dir,
                     std::unique_ptr<LsmTree>* tree);

  LsmTree(const LsmTree&) = delete;
  LsmTree& operator=(const LsmTree&) = delete;

  // ---- Write path (externally serialized) ----

  Status Put(const Slice& key, const Slice& value, Timestamp ts);
  // Writes a tombstone masking every version with ts' <= ts.
  Status Delete(const Slice& key, Timestamp ts);

  bool NeedsFlush() const;
  // Synchronously flushes the memtable into a new disk store and then runs
  // a merge compaction if the store count reached the trigger.
  Status Flush();
  // Major compaction of all disk stores.
  Status CompactAll();

  // ---- Read path (thread-safe) ----

  // Newest version of `key` visible at read_ts. NotFound if absent or
  // masked by a tombstone. version_ts (optional) receives the version's
  // timestamp.
  Status Get(const Slice& key, Timestamp read_ts, std::string* value,
             Timestamp* version_ts = nullptr);

  struct ScanEntry {
    std::string key;
    std::string value;
    Timestamp ts;
  };
  // Newest visible version per key in [start, end); end empty = unbounded.
  // limit == 0 means unlimited.
  Status Scan(const Slice& start, const Slice& end, Timestamp read_ts,
              size_t limit, std::vector<ScanEntry>* out);

  struct Version {
    Timestamp ts;
    bool is_tombstone;
    std::string value;
  };
  // All retained versions of `key`, newest first (diagnostics and tests).
  Status GetVersions(const Slice& key, std::vector<Version>* out);

  // Copies every retained record (all versions AND tombstones) with user
  // key in [start, end) into `target`, preserving timestamps. Used by
  // region splits to materialize the daughter regions.
  // REQUIRES: external write serialization on `target`.
  Status ExportRecords(const Slice& start, const Slice& end,
                       LsmTree* target);

  // ---- Introspection ----

  // Largest timestamp persisted into disk stores; WAL entries at or below
  // it need no replay.
  Timestamp flushed_ts() const {
    return flushed_ts_.load(std::memory_order_acquire);
  }

  // Owner-managed WAL position: the owner records the log sequence of
  // each edit as it applies it; Flush() persists the value captured at the
  // memtable swap, and after a crash applied_seq() (recovered from the
  // manifest) tells the recovery which WAL suffix to replay. Only the
  // flush-time value is ever persisted — edits still in the memtable must
  // stay replayable.
  void set_applied_seq(uint64_t seq) {
    applied_seq_.store(seq, std::memory_order_release);
  }
  uint64_t applied_seq() const {
    return durable_seq_.load(std::memory_order_acquire);
  }
  size_t MemtableBytes() const;
  uint64_t MemtableEntries() const;
  int NumDiskStores() const;
  uint64_t num_gets() const { return num_gets_.load(); }
  uint64_t num_puts() const { return num_puts_.load(); }

 private:
  LsmTree(const LsmOptions& options, std::string dir);

  struct State {
    std::shared_ptr<MemTable> mem;
    std::shared_ptr<MemTable> imm;  // memtable being flushed, may be null
    std::vector<std::shared_ptr<SstReader>> tables;  // newest first
  };

  State CopyState() const;
  Status WriteManifest();
  Status RecoverManifest();
  std::string SstPath(uint64_t file_number) const;

  // Builds a merging iterator over every source in `state`.
  static std::unique_ptr<RecordIterator> NewInternalIterator(
      const State& state);

  const LsmOptions options_;
  const std::string dir_;

  mutable Mutex state_mu_;  // guards mem_/imm_/tables_ pointer swaps
  std::shared_ptr<MemTable> mem_ GUARDED_BY(state_mu_);
  std::shared_ptr<MemTable> imm_ GUARDED_BY(state_mu_);
  std::vector<std::shared_ptr<SstReader>> tables_ GUARDED_BY(state_mu_);

  // Only touched on the externally-serialized write path (Open/Flush/
  // Compact), so it needs no lock of its own.
  uint64_t next_file_number_ = 1;
  std::atomic<Timestamp> flushed_ts_{0};
  std::atomic<uint64_t> applied_seq_{0};  // volatile, owner-updated per edit
  std::atomic<uint64_t> durable_seq_{0};  // persisted at flush
  std::atomic<uint64_t> num_gets_{0};
  std::atomic<uint64_t> num_puts_{0};
};

}  // namespace diffindex

#endif  // DIFFINDEX_LSM_LSM_TREE_H_
