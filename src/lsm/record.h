// The LSM record model.
//
// Every write is an append of a versioned record <key, value, ts> (Section
// 2.1 of the paper): an update is a put with a newer timestamp, a deletion
// is a tombstone. A tombstone at timestamp T masks every version of the
// key with timestamp <= T (HBase "delete columns up to T" semantics, which
// is what Algorithm 1's DI(v_old ⊕ k, t_new − δ) relies on — the deleter
// does not know t_old, only that t_old <= t_new − δ).
//
// Internal key encoding (byte-comparable within the custom comparator):
//   user_key | fixed64(ts) | type      (9-byte trailer)
// Ordering: user_key ascending, then ts DESCENDING (newest first), then
// tombstone before put at equal ts (so a same-timestamp delete wins).

#ifndef DIFFINDEX_LSM_RECORD_H_
#define DIFFINDEX_LSM_RECORD_H_

#include <cstdint>
#include <string>

#include "util/slice.h"
#include "util/timestamp_oracle.h"

namespace diffindex {

enum class ValueType : uint8_t {
  kTombstone = 0,  // sorts before kPut at equal (key, ts): delete wins
  kPut = 1,
};

constexpr size_t kInternalKeyTrailer = 9;  // 8-byte ts + 1-byte type

// Appends the encoded internal key to *dst.
void AppendInternalKey(std::string* dst, const Slice& user_key, Timestamp ts,
                       ValueType type);

std::string MakeInternalKey(const Slice& user_key, Timestamp ts,
                            ValueType type);

struct ParsedInternalKey {
  Slice user_key;
  Timestamp ts = 0;
  ValueType type = ValueType::kPut;
};

// Returns false if `internal_key` is too short to contain the trailer.
bool ParseInternalKey(const Slice& internal_key, ParsedInternalKey* result);

// Extracts the user key portion (asserts well-formedness).
Slice ExtractUserKey(const Slice& internal_key);

// Total order over encoded internal keys. Implements the ordering in the
// file comment.
class InternalKeyComparator {
 public:
  // <0 if a < b, 0 if equal, >0 if a > b.
  int Compare(const Slice& a, const Slice& b) const;
};

}  // namespace diffindex

#endif  // DIFFINDEX_LSM_RECORD_H_
