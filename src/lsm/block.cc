#include "lsm/block.h"

#include <cassert>

#include "util/coding.h"

namespace diffindex {

BlockBuilder::BlockBuilder(int restart_interval)
    : restart_interval_(restart_interval) {
  restarts_.push_back(0);
}

void BlockBuilder::Reset() {
  buffer_.clear();
  restarts_.clear();
  restarts_.push_back(0);
  counter_ = 0;
  last_key_.clear();
  finished_ = false;
}

size_t BlockBuilder::CurrentSizeEstimate() const {
  return buffer_.size() + restarts_.size() * sizeof(uint32_t) +
         sizeof(uint32_t);
}

void BlockBuilder::Add(const Slice& key, const Slice& value) {
  assert(!finished_);
  size_t shared = 0;
  if (counter_ < restart_interval_) {
    // Longest common prefix with the previous key.
    const size_t min_len = std::min(last_key_.size(), key.size());
    while (shared < min_len && last_key_[shared] == key[shared]) {
      shared++;
    }
  } else {
    restarts_.push_back(static_cast<uint32_t>(buffer_.size()));
    counter_ = 0;
  }
  const size_t non_shared = key.size() - shared;

  PutVarint32(&buffer_, static_cast<uint32_t>(shared));
  PutVarint32(&buffer_, static_cast<uint32_t>(non_shared));
  PutVarint32(&buffer_, static_cast<uint32_t>(value.size()));
  buffer_.append(key.data() + shared, non_shared);
  buffer_.append(value.data(), value.size());

  last_key_.resize(shared);
  last_key_.append(key.data() + shared, non_shared);
  counter_++;
}

Slice BlockBuilder::Finish() {
  for (uint32_t restart : restarts_) {
    PutFixed32(&buffer_, restart);
  }
  PutFixed32(&buffer_, static_cast<uint32_t>(restarts_.size()));
  finished_ = true;
  return Slice(buffer_);
}

Block::Block(Slice contents) : full_(contents) {
  if (contents.size() < sizeof(uint32_t)) return;
  const uint32_t num_restarts =
      DecodeFixed32(contents.data() + contents.size() - sizeof(uint32_t));
  const size_t restart_bytes =
      (static_cast<size_t>(num_restarts) + 1) * sizeof(uint32_t);
  if (restart_bytes > contents.size()) return;
  data_ = Slice(contents.data(), contents.size() - restart_bytes);
  num_restarts_ = static_cast<int>(num_restarts);
}

uint32_t Block::RestartPoint(int index) const {
  return DecodeFixed32(full_.data() + data_.size() +
                       static_cast<size_t>(index) * sizeof(uint32_t));
}

class Block::Iter final : public RecordIterator {
 public:
  // Holds the (cheap) Block by value plus the cache handle, so the
  // iterator is self-contained.
  Iter(Block block, std::shared_ptr<const std::string> owner)
      : block_(std::move(block)), owner_(std::move(owner)) {}

  bool Valid() const override { return valid_; }

  void SeekToFirst() override {
    if (block_.num_restarts_ <= 0) {
      MarkCorrupt();
      return;
    }
    SeekToRestart(0);
    ParseNext();
  }

  void Seek(const Slice& target) override {
    if (block_.num_restarts_ <= 0) {
      MarkCorrupt();
      return;
    }
    // Binary search over restarts: last restart whose key < target.
    int lo = 0, hi = block_.num_restarts_ - 1;
    while (lo < hi) {
      const int mid = lo + (hi - lo + 1) / 2;
      Slice restart_key;
      if (!KeyAtRestart(mid, &restart_key)) {
        MarkCorrupt();
        return;
      }
      if (cmp_.Compare(restart_key, target) < 0) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    SeekToRestart(lo);
    // Linear scan within the interval.
    while (true) {
      ParseNext();
      if (!valid_) return;
      if (cmp_.Compare(Slice(key_), target) >= 0) return;
    }
  }

  void Next() override {
    assert(valid_);
    ParseNext();
  }

  Slice key() const override { return Slice(key_); }
  Slice value() const override { return value_; }
  Status status() const override { return status_; }

 private:
  void SeekToRestart(int restart) {
    offset_ = block_.RestartPoint(restart);
    key_.clear();
    valid_ = false;
  }

  void MarkCorrupt() {
    valid_ = false;
    status_ = Status::Corruption("malformed block entry");
  }

  // Decodes the full key stored at a restart point (shared == 0 there).
  bool KeyAtRestart(int restart, Slice* key) const {
    const char* p = block_.data_.data() + block_.RestartPoint(restart);
    const char* limit = block_.data_.data() + block_.data_.size();
    uint32_t shared, non_shared, value_len;
    p = GetVarint32Ptr(p, limit, &shared);
    if (p == nullptr || shared != 0) return false;
    p = GetVarint32Ptr(p, limit, &non_shared);
    if (p == nullptr) return false;
    p = GetVarint32Ptr(p, limit, &value_len);
    if (p == nullptr || p + non_shared > limit) return false;
    *key = Slice(p, non_shared);
    return true;
  }

  void ParseNext() {
    const char* p = block_.data_.data() + offset_;
    const char* limit = block_.data_.data() + block_.data_.size();
    if (p >= limit) {
      valid_ = false;
      return;
    }
    uint32_t shared, non_shared, value_len;
    p = GetVarint32Ptr(p, limit, &shared);
    if (p != nullptr) p = GetVarint32Ptr(p, limit, &non_shared);
    if (p != nullptr) p = GetVarint32Ptr(p, limit, &value_len);
    if (p == nullptr || p + non_shared + value_len > limit ||
        shared > key_.size()) {
      MarkCorrupt();
      return;
    }
    key_.resize(shared);
    key_.append(p, non_shared);
    value_ = Slice(p + non_shared, value_len);
    offset_ = static_cast<uint32_t>((p + non_shared + value_len) -
                                    block_.data_.data());
    valid_ = true;
  }

  Block block_;
  std::shared_ptr<const std::string> owner_;
  InternalKeyComparator cmp_;
  uint32_t offset_ = 0;
  std::string key_;
  Slice value_;
  bool valid_ = false;
  Status status_;
};

std::unique_ptr<RecordIterator> Block::NewIterator(
    std::shared_ptr<const std::string> owner) const {
  return std::make_unique<Iter>(*this, std::move(owner));
}

}  // namespace diffindex
