#include "lsm/merging_iterator.h"

#include "lsm/record.h"

namespace diffindex {

namespace {

class MergingIterator final : public RecordIterator {
 public:
  explicit MergingIterator(
      std::vector<std::unique_ptr<RecordIterator>> children)
      : children_(std::move(children)), current_(-1) {}

  bool Valid() const override { return current_ >= 0; }

  void SeekToFirst() override {
    for (auto& child : children_) child->SeekToFirst();
    FindSmallest();
  }

  void Seek(const Slice& target) override {
    for (auto& child : children_) child->Seek(target);
    FindSmallest();
  }

  void Next() override {
    children_[current_]->Next();
    FindSmallest();
  }

  Slice key() const override { return children_[current_]->key(); }
  Slice value() const override { return children_[current_]->value(); }

  Status status() const override {
    for (const auto& child : children_) {
      Status s = child->status();
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

 private:
  void FindSmallest() {
    int smallest = -1;
    for (size_t i = 0; i < children_.size(); i++) {
      if (!children_[i]->Valid()) continue;
      if (smallest < 0 ||
          cmp_.Compare(children_[i]->key(), children_[smallest]->key()) < 0) {
        // Strict < keeps the youngest (lowest index) child on ties.
        smallest = static_cast<int>(i);
      }
    }
    current_ = smallest;
  }

  std::vector<std::unique_ptr<RecordIterator>> children_;
  InternalKeyComparator cmp_;
  int current_;
};

}  // namespace

std::unique_ptr<RecordIterator> NewMergingIterator(
    std::vector<std::unique_ptr<RecordIterator>> children) {
  return std::make_unique<MergingIterator>(std::move(children));
}

}  // namespace diffindex
