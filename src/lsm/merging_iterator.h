// K-way merge over record iterators (memtable + disk stores), ordered by
// InternalKeyComparator with ties broken toward the younger source. Used
// by scans ("the mem-store and all disk stores need to be scanned",
// Section 2.1) and by compaction.

#ifndef DIFFINDEX_LSM_MERGING_ITERATOR_H_
#define DIFFINDEX_LSM_MERGING_ITERATOR_H_

#include <memory>
#include <vector>

#include "lsm/iterator.h"

namespace diffindex {

// `children` must be ordered youngest source first; on duplicate internal
// keys the youngest source's record is yielded first.
std::unique_ptr<RecordIterator> NewMergingIterator(
    std::vector<std::unique_ptr<RecordIterator>> children);

}  // namespace diffindex

#endif  // DIFFINDEX_LSM_MERGING_ITERATOR_H_
