#include "lsm/memtable.h"

#include <cassert>
#include <cstring>

#include "util/coding.h"

namespace diffindex {

namespace {

// Decodes the internal key portion of an encoded memtable entry.
Slice GetInternalKey(const char* entry) {
  uint32_t klen;
  const char* p = GetVarint32Ptr(entry, entry + 5, &klen);
  return Slice(p, klen);
}

Slice GetEntryValue(const char* entry) {
  uint32_t klen;
  const char* p = GetVarint32Ptr(entry, entry + 5, &klen);
  p += klen;
  uint32_t vlen;
  p = GetVarint32Ptr(p, p + 5, &vlen);
  return Slice(p, vlen);
}

}  // namespace

int MemTable::KeyComparator::operator()(const char* a, const char* b) const {
  static const InternalKeyComparator cmp;
  return cmp.Compare(GetInternalKey(a), GetInternalKey(b));
}

MemTable::MemTable() : table_(KeyComparator(), &arena_) {}

void MemTable::Add(const Slice& user_key, Timestamp ts, ValueType type,
                   const Slice& value) {
  const std::string ikey = MakeInternalKey(user_key, ts, type);
  const size_t encoded_len = VarintLength(ikey.size()) + ikey.size() +
                             VarintLength(value.size()) + value.size();
  // Stack-encode into the arena buffer.
  char* buf = arena_.Allocate(encoded_len);
  std::string header;
  PutVarint32(&header, static_cast<uint32_t>(ikey.size()));
  char* p = buf;
  memcpy(p, header.data(), header.size());
  p += header.size();
  memcpy(p, ikey.data(), ikey.size());
  p += ikey.size();
  std::string vlen;
  PutVarint32(&vlen, static_cast<uint32_t>(value.size()));
  memcpy(p, vlen.data(), vlen.size());
  p += vlen.size();
  memcpy(p, value.data(), value.size());
  assert(p + value.size() == buf + encoded_len);

  if (table_.Contains(buf)) {
    // Identical (key, ts, type) already present: idempotent re-add (the
    // recovery protocol may replay the same put twice). First write wins.
    return;
  }
  table_.Insert(buf);
  num_entries_.fetch_add(1, std::memory_order_relaxed);
  data_bytes_.fetch_add(encoded_len, std::memory_order_relaxed);
  Timestamp prev = max_ts_.load(std::memory_order_relaxed);
  while (ts > prev && !max_ts_.compare_exchange_weak(
                          prev, ts, std::memory_order_relaxed)) {
  }
}

LookupResult MemTable::Get(const Slice& user_key, Timestamp read_ts) const {
  LookupResult result;
  // Records for user_key sort ts-descending with tombstone-before-put at
  // equal ts; seeking to (user_key, read_ts, kTombstone) lands on the
  // newest record with ts <= read_ts.
  const std::string target =
      MakeInternalKey(user_key, read_ts, ValueType::kTombstone);
  std::string target_entry;
  PutVarint32(&target_entry, static_cast<uint32_t>(target.size()));
  target_entry.append(target);

  Table::Iterator iter(&table_);
  iter.Seek(target_entry.data());
  if (!iter.Valid()) return result;

  const Slice ikey = GetInternalKey(iter.key());
  ParsedInternalKey parsed;
  if (!ParseInternalKey(ikey, &parsed)) return result;
  if (parsed.user_key != user_key) return result;

  result.ts = parsed.ts;
  if (parsed.type == ValueType::kTombstone) {
    result.state = LookupState::kDeleted;
  } else {
    result.state = LookupState::kFound;
    result.value = GetEntryValue(iter.key()).ToString();
  }
  return result;
}

class MemTable::Iter final : public RecordIterator {
 public:
  explicit Iter(const Table* table) : iter_(table) {}

  bool Valid() const override { return iter_.Valid(); }
  void SeekToFirst() override { iter_.SeekToFirst(); }
  void Seek(const Slice& target) override {
    std::string entry;
    PutVarint32(&entry, static_cast<uint32_t>(target.size()));
    entry.append(target.data(), target.size());
    iter_.Seek(entry.data());
  }
  void Next() override { iter_.Next(); }
  Slice key() const override { return GetInternalKey(iter_.key()); }
  Slice value() const override { return GetEntryValue(iter_.key()); }

 private:
  Table::Iterator iter_;
};

std::unique_ptr<RecordIterator> MemTable::NewIterator() const {
  return std::make_unique<Iter>(&table_);
}

}  // namespace diffindex
