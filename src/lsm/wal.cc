#include "lsm/wal.h"

#include <vector>

#include "check/yield.h"
#include "fault/failpoint.h"
#include "util/coding.h"
#include "util/crc32c.h"

namespace diffindex::wal {

constexpr size_t kHeaderSize = 8;  // crc32 (4) + length (4)

Status Writer::Open(Env* env, const std::string& path, SyncMode sync_mode,
                    std::unique_ptr<Writer>* writer) {
  std::unique_ptr<WritableFile> file;
  DIFFINDEX_RETURN_NOT_OK(env->NewWritableFile(path, &file));
  // NOLINT(diffindex-naked-new): private-ctor factory
  writer->reset(new Writer(std::move(file), sync_mode));
  return Status::OK();
}

Status Writer::AddRecord(const Slice& payload) {
  // Decision point before the record hits the log: a group-commit leader
  // can be elected (or a flush can roll the log) between the caller's
  // ticket grab and the append landing.
  CHECK_YIELD("wal.append");
  DIFFINDEX_FAILPOINT("wal.append");
  std::string header;
  PutFixed32(&header,
             crc32c::Mask(crc32c::Value(payload.data(), payload.size())));
  PutFixed32(&header, static_cast<uint32_t>(payload.size()));
  DIFFINDEX_RETURN_NOT_OK(file_->Append(header));
  DIFFINDEX_RETURN_NOT_OK(file_->Append(payload));
  bytes_written_ += kHeaderSize + payload.size();
  if (sync_mode_ == SyncMode::kEveryRecord) {
    DIFFINDEX_FAILPOINT("wal.sync");
    DIFFINDEX_RETURN_NOT_OK(file_->Sync());
  }
  return Status::OK();
}

Status Writer::Sync() {
  // The group-commit leader's durability point: followers whose appends
  // landed before this yield are covered by the sync that follows it.
  CHECK_YIELD("wal.sync");
  DIFFINDEX_FAILPOINT("wal.sync");
  return file_->Sync();
}

Status Writer::Close() { return file_->Close(); }

Status Reader::Open(Env* env, const std::string& path,
                    std::unique_ptr<Reader>* reader) {
  std::unique_ptr<SequentialFile> file;
  DIFFINDEX_RETURN_NOT_OK(env->NewSequentialFile(path, &file));
  reader->reset(new Reader(std::move(file)));  // NOLINT(diffindex-naked-new)
  return Status::OK();
}

bool Reader::ReadRecord(std::string* payload) {
  if (eof_) return false;

  char header[kHeaderSize];
  Slice header_slice;
  if (!file_->Read(kHeaderSize, &header_slice, header).ok() ||
      header_slice.size() < kHeaderSize) {
    eof_ = true;
    corruption_ = !header_slice.empty();  // partial header = torn record
    return false;
  }
  const uint32_t expected_crc = crc32c::Unmask(DecodeFixed32(header));
  const uint32_t length = DecodeFixed32(header + 4);

  std::vector<char> buf(length);
  Slice body;
  if (!file_->Read(length, &body, buf.data()).ok() || body.size() < length) {
    eof_ = true;
    corruption_ = true;  // torn body
    return false;
  }
  if (crc32c::Value(body.data(), body.size()) != expected_crc) {
    eof_ = true;
    corruption_ = true;
    return false;
  }
  payload->assign(body.data(), body.size());
  return true;
}

}  // namespace diffindex::wal
