#include "core/session.h"

#include <algorithm>

#include "core/index_codec.h"

namespace diffindex {

SessionId SessionManager::CreateSession() {
  MutexLock lock(mu_);
  const SessionId id = next_id_++;
  Session session;
  session.last_active_micros = TimestampOracle::NowMicros();
  sessions_[id] = std::move(session);
  return id;
}

void SessionManager::EndSession(SessionId id) {
  MutexLock lock(mu_);
  sessions_.erase(id);
}

Status SessionManager::TouchLocked(SessionId id, Session** session) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::SessionExpired("unknown or expired session " +
                                  std::to_string(id));
  }
  const uint64_t now = TimestampOracle::NowMicros();
  if (now - it->second.last_active_micros > options_.idle_limit_micros) {
    sessions_.erase(it);
    return Status::SessionExpired("session " + std::to_string(id) +
                                  " idle too long");
  }
  it->second.last_active_micros = now;
  *session = &it->second;
  return Status::OK();
}

Status SessionManager::RecordEntry(SessionId id,
                                   const std::string& index_table,
                                   const std::string& index_row, Timestamp ts,
                                   bool is_delete) {
  MutexLock lock(mu_);
  Session* session;
  DIFFINDEX_RETURN_NOT_OK(TouchLocked(id, &session));
  if (session->degraded) return Status::OK();  // merging already disabled

  auto& table = session->tables[index_table];
  auto it = table.find(index_row);
  if (it == table.end()) {
    session->memory_bytes +=
        index_table.size() + index_row.size() + sizeof(PrivateEntry);
    table[index_row] = PrivateEntry{ts, is_delete};
  } else if (ts >= it->second.ts) {
    it->second = PrivateEntry{ts, is_delete};
  }

  if (session->memory_bytes > options_.max_memory_bytes) {
    // Out-of-memory protection: drop the private tables and degrade this
    // session to plain async-simple semantics.
    session->tables.clear();
    session->memory_bytes = 0;
    session->degraded = true;
  }
  return Status::OK();
}

Status SessionManager::MergeHits(SessionId id, const std::string& index_table,
                                 const std::string& range_start,
                                 const std::string& range_end,
                                 std::vector<IndexHit>* hits,
                                 bool* degraded) {
  MutexLock lock(mu_);
  Session* session;
  DIFFINDEX_RETURN_NOT_OK(TouchLocked(id, &session));
  if (degraded != nullptr) *degraded = session->degraded;
  if (session->degraded) return Status::OK();

  auto table_it = session->tables.find(index_table);
  if (table_it == session->tables.end()) return Status::OK();
  const auto& priv = table_it->second;

  // 1. Remove server hits that this session already superseded.
  std::vector<IndexHit> merged;
  merged.reserve(hits->size());
  for (IndexHit& hit : *hits) {
    const std::string index_row =
        EncodeIndexRow(hit.value_encoded, hit.base_row);
    auto it = priv.find(index_row);
    if (it != priv.end() && it->second.is_delete &&
        it->second.ts >= hit.ts) {
      continue;  // deleted by this session, server hasn't caught up
    }
    merged.push_back(std::move(hit));
  }

  // 2. Add private entries in range the server has not returned.
  auto lo = priv.lower_bound(range_start);
  auto hi = range_end.empty() ? priv.end() : priv.lower_bound(range_end);
  for (auto it = lo; it != hi; ++it) {
    if (it->second.is_delete) continue;
    IndexHit hit;
    if (!DecodeIndexRow(it->first, &hit.value_encoded, &hit.base_row)) {
      continue;
    }
    hit.ts = it->second.ts;
    bool already = false;
    for (const IndexHit& existing : merged) {
      if (existing.base_row == hit.base_row &&
          existing.value_encoded == hit.value_encoded) {
        already = true;
        break;
      }
    }
    if (!already) merged.push_back(std::move(hit));
  }

  std::sort(merged.begin(), merged.end(),
            [](const IndexHit& a, const IndexHit& b) {
              if (a.value_encoded != b.value_encoded) {
                return a.value_encoded < b.value_encoded;
              }
              return a.base_row < b.base_row;
            });
  *hits = std::move(merged);
  return Status::OK();
}

size_t SessionManager::CollectExpired() {
  MutexLock lock(mu_);
  const uint64_t now = TimestampOracle::NowMicros();
  size_t collected = 0;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (now - it->second.last_active_micros > options_.idle_limit_micros) {
      it = sessions_.erase(it);
      collected++;
    } else {
      ++it;
    }
  }
  return collected;
}

size_t SessionManager::live_sessions() const {
  MutexLock lock(mu_);
  return sessions_.size();
}

bool SessionManager::IsLive(SessionId id) const {
  MutexLock lock(mu_);
  return sessions_.count(id) > 0;
}

size_t SessionManager::MemoryUsage(SessionId id) const {
  MutexLock lock(mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? 0 : it->second.memory_bytes;
}

}  // namespace diffindex
