// Index lifecycle utilities (the "index creation, maintenance and
// cleanse" client utility of Section 7):
//
//   * Backfill — CREATE INDEX on a table that already holds data: scan
//     the base table and write one index entry per existing row, each
//     carrying its base cell's timestamp (the timestamp rule holds for
//     backfilled entries too).
//   * Cleanse — full-index sweep removing stale entries (the batch
//     version of sync-insert's lazy read-repair).

#ifndef DIFFINDEX_CORE_BACKFILL_H_
#define DIFFINDEX_CORE_BACKFILL_H_

#include <memory>
#include <string>

#include "cluster/client.h"
#include "core/op_stats.h"

namespace diffindex {

struct BackfillReport {
  uint64_t rows_scanned = 0;
  uint64_t entries_written = 0;
  uint64_t rows_skipped = 0;  // missing indexed column(s)
};

struct CleanseReport {
  uint64_t entries_scanned = 0;
  uint64_t stale_removed = 0;
};

// Read-only consistency audit of a global index against its base table.
struct VerifyReport {
  uint64_t entries_scanned = 0;   // index entries examined
  uint64_t stale_entries = 0;     // entry's value no longer matches base
  uint64_t rows_scanned = 0;      // base rows examined
  uint64_t missing_entries = 0;   // base row lacks its index entry

  bool consistent() const {
    return stale_entries == 0 && missing_entries == 0;
  }
};

class IndexBackfill {
 public:
  explicit IndexBackfill(std::shared_ptr<Client> client,
                         OpStats* stats = nullptr)
      : client_(std::move(client)), stats_(stats) {}

  Status Run(const std::string& base_table, const std::string& index_name,
             BackfillReport* report);

  Status Cleanse(const std::string& base_table, const std::string& index_name,
                 CleanseReport* report);

  // Dry-run audit: checks both directions (no stale entries, no missing
  // entries) without mutating anything. Meaningful on a quiescent system
  // — concurrent writers produce transient mismatches by design.
  Status Verify(const std::string& base_table, const std::string& index_name,
                VerifyReport* report);

 private:
  Status FindIndex(const std::string& base_table,
                   const std::string& index_name, IndexDescriptor* index);

  static constexpr uint32_t kScanBatch = 512;

  std::shared_ptr<Client> client_;
  OpStats* const stats_;
};

}  // namespace diffindex

#endif  // DIFFINDEX_CORE_BACKFILL_H_
