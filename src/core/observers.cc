#include "core/observers.h"

#include <algorithm>

#include "check/yield.h"
#include "core/index_codec.h"
#include "fault/failpoint.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace diffindex {

namespace {

// Every RB/DI anchor a task carries: its own old_ts plus the old_ts of
// each task coalesced into it, deduped (crash replay can queue duplicate
// puts of the same base edit).
std::vector<Timestamp> RetractionPoints(const IndexTask& task) {
  std::vector<Timestamp> points = task.covered_old_ts;
  points.push_back(task.old_ts != 0 ? task.old_ts : task.ts);
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  return points;
}

}  // namespace

IndexManager::IndexManager(RegionServer* server,
                           std::shared_ptr<Client> internal_client,
                           OpStats* stats, const AuqOptions& auq_options)
    : server_(server), internal_client_(std::move(internal_client)),
      stats_(stats) {
  auq_ = std::make_unique<AsyncUpdateQueue>(
      auq_options,
      [this](const IndexTask& task) {
        // APS backend: full processing (BA2-BA4), background stats bucket.
        return ProcessTask(task, /*insert_only=*/false, /*foreground=*/false);
      },
      [this](const std::vector<IndexTask>& tasks,
             std::vector<Status>* statuses) {
        // Batched APS backend (drain_batch_size > 1): one grouped RPC per
        // owning server instead of one round trip per task.
        ProcessTaskBatch(tasks, statuses);
      });
}

IndexManager::~IndexManager() { Shutdown(); }

void IndexManager::Shutdown() { auq_->Shutdown(); }

void IndexManager::Abandon() { auq_->Abandon(); }

uint64_t IndexManager::QueueDepth() const { return auq_->depth(); }

bool IndexManager::Touches(const IndexDescriptor& index,
                           const std::vector<Cell>& cells) {
  for (const Cell& cell : cells) {
    if (cell.column == index.column) return true;
    for (const auto& extra : index.extra_columns) {
      if (cell.column == extra) return true;
    }
  }
  return false;
}

Status IndexManager::PostApply(const PutRequest& put, Timestamp ts) {
  const CatalogSnapshot catalog = server_->catalog();
  const TableDescriptor* table = catalog.GetTable(put.table);
  if (table == nullptr || table->indexes.empty()) return Status::OK();

  Status overall = Status::OK();
  for (const IndexDescriptor& index : table->indexes) {
    if (!Touches(index, put.cells)) continue;

    IndexTask task;
    task.base_table = put.table;
    task.row = put.row;
    task.cells = put.cells;
    task.ts = ts;
    task.old_ts = ts;  // oldest covered put == this put, until coalesced
    task.index = index;
    // Hand the put's trace to the task so APS/retry work chains to it.
    const obs::TraceContext& ambient = obs::CurrentTraceContext();
    if (ambient.active()) task.trace = ambient.Child();

    if (index.is_local) {
      // Local index: synchronous, entirely server-local (no remote call
      // to fail, so no AUQ fallback is needed — the put and the index
      // share the region's fate).
      Status s = ProcessLocalTask(task);
      if (!s.ok() && overall.ok()) overall = s;
      continue;
    }

    switch (index.scheme) {
      case IndexScheme::kSyncFull: {
        Status s;
        {
          obs::SpanTimer span(server_->metrics(), server_->traces(),
                              "rs.index_sync");
          s = ProcessTask(task, /*insert_only=*/false,
                          /*foreground=*/true);
        }
        if (!s.ok()) {
          // Degrade to eventual: queue for retry, base put still succeeds.
          DIFFINDEX_LOG_WARN << "sync-full index op failed (" << s.ToString()
                             << "); queued for retry";
          auq_->Enqueue(std::move(task));
        }
        break;
      }
      case IndexScheme::kSyncInsert: {
        Status s;
        {
          obs::SpanTimer span(server_->metrics(), server_->traces(),
                              "rs.index_sync");
          s = ProcessTask(task, /*insert_only=*/true,
                          /*foreground=*/true);
        }
        if (!s.ok()) {
          DIFFINDEX_LOG_WARN << "sync-insert index op failed ("
                             << s.ToString() << "); queued for retry";
          auq_->Enqueue(std::move(task));
        }
        break;
      }
      case IndexScheme::kAsyncSimple:
      case IndexScheme::kAsyncSession: {
        // AU1: acknowledge once the put is logged and the task enqueued.
        if (!auq_->Enqueue(std::move(task))) {
          overall = Status::Aborted("async update queue shut down");
        }
        break;
      }
    }
  }
  return overall;
}

void IndexManager::PreFlush(const std::string& table) {
  const CatalogSnapshot catalog = server_->catalog();
  const TableDescriptor* desc = catalog.GetTable(table);
  // Only base tables with indexes can have pending AUQ work derived from
  // their memtables. (Sync schemes also fall back to the AUQ on failure,
  // so any indexed table gets the pause-and-drain treatment.)
  if (desc == nullptr || desc->indexes.empty()) return;
  // Drain barrier about to engage (§5.3): enqueues racing the pause
  // land either before the barrier (drained below) or block until
  // PostFlush resumes intake.
  CHECK_YIELD("auq.pause");
  auq_->Pause();
  // "auq.drain" deliberately breaks the Section 5.3 invariant
  // PR(Flushed) = ∅: the flush proceeds with index work still queued, so a
  // crash after the WAL roll-forward loses it. Exists solely to prove the
  // chaos harness catches the resulting lost entries.
  if (fault::FailpointRegistry::Global()->Fires("auq.drain")) {
    DIFFINDEX_LOG_WARN
        << "failpoint auq.drain: skipping drain-before-flush for " << table;
    return;  // still paused; PostFlush's Resume rebalances
  }
  auq_->WaitDrained();
}

void IndexManager::PostFlush(const std::string& table) {
  const CatalogSnapshot catalog = server_->catalog();
  const TableDescriptor* desc = catalog.GetTable(table);
  if (desc == nullptr || desc->indexes.empty()) return;
  auq_->Resume();
}

void IndexManager::OnWalReplay(const PutRequest& put, Timestamp ts) {
  const CatalogSnapshot catalog = server_->catalog();
  const TableDescriptor* table = catalog.GetTable(put.table);
  if (table == nullptr || table->indexes.empty()) return;
  for (const IndexDescriptor& index : table->indexes) {
    if (!Touches(index, put.cells)) continue;
    // Local indexes are wiped and rebuilt wholesale after replay
    // (OnRegionOpened); only global index work re-enters the AUQ.
    if (index.is_local) continue;
    IndexTask task;
    task.base_table = put.table;
    task.row = put.row;
    task.cells = put.cells;
    task.ts = ts;
    task.old_ts = ts;
    task.index = index;
    // "Each base put replayed is also put into AUQ again ... regardless of
    // whether or not it has been delivered before the failure." Duplicate
    // delivery is idempotent because index entries reuse the base ts.
    auq_->Enqueue(std::move(task));
  }
}

Status IndexManager::ProcessLocalTask(const IndexTask& task) {
  // New entry @ ts from the put's own values.
  std::optional<std::string> new_value;
  DIFFINDEX_RETURN_NOT_OK(ResolveIndexValue(
      task, task.ts, /*use_task_cells=*/true, /*foreground=*/true,
      &new_value));
  if (new_value.has_value()) {
    if (stats_ != nullptr) stats_->AddIndexPut();
    DIFFINDEX_RETURN_NOT_OK(server_->ApplyLocalIndex(
        task.base_table, task.row, task.index.name,
        EncodeIndexRow(*new_value, task.row), task.ts,
        /*is_delete=*/false));
  }
  // Old entry @ ts - δ: the base read is local (collocation is the whole
  // advantage of a local index), but it is still a base read.
  std::optional<std::string> old_value;
  DIFFINDEX_RETURN_NOT_OK(ResolveIndexValue(task, task.ts - kDelta,
                                            /*use_task_cells=*/false,
                                            /*foreground=*/true, &old_value));
  if (!old_value.has_value()) return Status::OK();
  if (stats_ != nullptr) stats_->AddIndexPut();
  return server_->ApplyLocalIndex(task.base_table, task.row,
                                  task.index.name,
                                  EncodeIndexRow(*old_value, task.row),
                                  task.ts - kDelta, /*is_delete=*/true);
}

void IndexManager::OnRegionOpened(const std::string& table,
                                  uint64_t region_id) {
  const CatalogSnapshot catalog = server_->catalog();
  const TableDescriptor* desc = catalog.GetTable(table);
  if (desc == nullptr) return;
  bool has_local = false;
  for (const IndexDescriptor& index : desc->indexes) {
    if (index.is_local) has_local = true;
  }
  if (!has_local) return;

  // Rebuild every local index of this region from its base data (the
  // side tree was wiped at open).
  std::vector<ScannedRow> rows;
  if (!server_->ScanRegionRows(table, region_id, &rows).ok()) return;
  for (const ScannedRow& row : rows) {
    for (const IndexDescriptor& index : desc->indexes) {
      if (!index.is_local) continue;
      IndexTask task;
      task.base_table = table;
      task.row = row.row;
      task.ts = 0;
      task.index = index;
      for (const RowCell& cell : row.cells) {
        task.cells.push_back(Cell{cell.column, cell.value, false});
        task.ts = std::max(task.ts, cell.ts);
      }
      std::optional<std::string> value;
      if (!ResolveIndexValue(task, task.ts, /*use_task_cells=*/true,
                             /*foreground=*/false, &value)
               .ok() ||
          !value.has_value()) {
        continue;
      }
      // Best-effort rebuild: a row that fails to index is simply missing
      // from the local index until the next region (re)open, the same
      // staleness window the wipe-and-rebuild design already accepts.
      server_
          ->ApplyLocalIndex(table, row.row, index.name,
                            EncodeIndexRow(*value, row.row), task.ts,
                            /*is_delete=*/false)
          .IgnoreError();
    }
  }
}

Status IndexManager::ResolveIndexValue(const IndexTask& task,
                                       Timestamp read_ts, bool use_task_cells,
                                       bool foreground,
                                       std::optional<std::string>* out) {
  out->reset();
  std::vector<std::string> columns;
  columns.push_back(task.index.column);
  for (const auto& extra : task.index.extra_columns) {
    columns.push_back(extra);
  }

  std::vector<std::string> components;
  components.reserve(columns.size());
  for (const auto& column : columns) {
    if (use_task_cells) {
      const Cell* from_put = nullptr;
      for (const Cell& cell : task.cells) {
        if (cell.column == column) {
          from_put = &cell;
          break;
        }
      }
      if (from_put != nullptr) {
        if (from_put->is_delete) return Status::OK();  // column removed
        std::string component;
        if (column == task.index.column) {
          if (!IndexComponentFromCell(task.index, from_put->value,
                                      &component)
                   .ok()) {
            return Status::OK();  // dense cell lacks the indexed field
          }
        } else {
          component = from_put->value;
        }
        components.push_back(std::move(component));
        continue;
      }
    }
    // Component not carried by the put (or historical lookup): read the
    // base table — this is the RB of Algorithms 1 and 4.
    DIFFINDEX_FAILPOINT("index.read_base");
    std::string value;
    Status s = server_->LocalGetCell(task.base_table, task.row, column,
                                     read_ts, &value, nullptr);
    if (stats_ != nullptr) {
      if (foreground) {
        stats_->AddBaseRead();
      } else {
        stats_->AddAsyncBaseRead();
      }
    }
    if (s.IsWrongRegion()) {
      // Region moved (mid-failover); fall back to a routed read.
      Timestamp ts_out = 0;
      s = internal_client_->GetCell(task.base_table, task.row, column,
                                    read_ts, &value, &ts_out);
    }
    if (s.IsNotFound()) return Status::OK();  // no value at read_ts => no entry
    // Any other failure (node down, partition, injected I/O error) means
    // the value is UNKNOWN, not absent — propagate so the task retries.
    DIFFINDEX_RETURN_NOT_OK(s);
    std::string component;
    if (column == task.index.column) {
      if (!IndexComponentFromCell(task.index, value, &component).ok()) {
        return Status::OK();
      }
    } else {
      component = std::move(value);
    }
    components.push_back(std::move(component));
  }

  if (components.size() == 1) {
    *out = components[0];
  } else {
    *out = EncodeCompositeIndexValue(components);
  }
  return Status::OK();
}

Status IndexManager::PutIndexEntry(const std::string& index_table,
                                   const std::string& index_row, Timestamp ts,
                                   bool foreground) {
  if (stats_ != nullptr) {
    if (foreground) {
      stats_->AddIndexPut();
    } else {
      stats_->AddAsyncIndexPut();
    }
  }
  // PI step (SU2/BA4).
  DIFFINDEX_FAILPOINT("index.put");
  // Key-only entry: concatenated rowkey, null value (Section 4).
  return internal_client_->Put(index_table, index_row,
                               {Cell{"", "", /*is_delete=*/false}}, ts);
}

Status IndexManager::DeleteIndexEntry(const std::string& index_table,
                                      const std::string& index_row,
                                      Timestamp ts, bool foreground) {
  if (stats_ != nullptr) {
    if (foreground) {
      stats_->AddIndexPut();  // deletes cost the same as puts in LSM
    } else {
      stats_->AddAsyncIndexPut();
    }
  }
  // DI step (SU4/BA3).
  DIFFINDEX_FAILPOINT("index.delete");
  return internal_client_->Put(index_table, index_row,
                               {Cell{"", "", /*is_delete=*/true}}, ts);
}

Status IndexManager::ProcessTask(const IndexTask& task, bool insert_only,
                                 bool foreground) {
  // New index entry @ ts: value from the put itself (SU2/BA4). A put of a
  // delete-cell produces no new entry ("deletion can be treated as a put
  // with a null value").
  std::optional<std::string> new_value;
  DIFFINDEX_RETURN_NOT_OK(ResolveIndexValue(
      task, task.ts, /*use_task_cells=*/true, foreground, &new_value));

  if (new_value.has_value()) {
    const std::string new_row =
        EncodeIndexRow(*new_value, task.row);
    // PI about to land: index readers racing the entry's visibility
    // interleave here (SU2/BA4).
    CHECK_YIELD("index.stage.put");
    DIFFINDEX_RETURN_NOT_OK(
        PutIndexEntry(task.index.index_table, new_row, task.ts, foreground));
  }

  if (insert_only) return Status::OK();  // sync-insert stops at SU2

  // SU3/BA2 + SU4/BA3, once per covered put: read the value current just
  // before that put — RB(k, old_ts - δ); the δ matters, reading at ts
  // would return the value just written — and delete its entry at
  // old_ts - δ. With vold == vnew the rows coincide, but a tombstone at
  // old_ts - δ cannot mask the new entry at ts (Section 4.3). A plain
  // task has exactly one point (old_ts == ts); a coalesced survivor
  // replays every absorbed task's point too.
  for (const Timestamp old_ts : RetractionPoints(task)) {
    // Window between PI and this anchor's DI: a reader here sees both
    // the new and the not-yet-retracted old entry (Section 4.3 tolerates
    // it; the terminal oracle must not).
    CHECK_YIELD("index.retract");
    std::optional<std::string> old_value;
    DIFFINDEX_RETURN_NOT_OK(ResolveIndexValue(task, old_ts - kDelta,
                                              /*use_task_cells=*/false,
                                              foreground, &old_value));
    if (!old_value.has_value()) continue;  // fresh insert at this point
    const std::string old_row = EncodeIndexRow(*old_value, task.row);
    DIFFINDEX_RETURN_NOT_OK(DeleteIndexEntry(
        task.index.index_table, old_row, old_ts - kDelta, foreground));
  }
  return Status::OK();
}

Status IndexManager::StagePutIndexEntry(const std::string& index_table,
                                        const std::string& index_row,
                                        Timestamp ts,
                                        std::vector<PutRequest>* ops) {
  if (stats_ != nullptr) stats_->AddAsyncIndexPut();
  DIFFINDEX_FAILPOINT("index.put");
  PutRequest req;
  req.table = index_table;
  req.row = index_row;
  req.cells = {Cell{"", "", /*is_delete=*/false}};
  req.ts = ts;
  ops->push_back(std::move(req));
  return Status::OK();
}

Status IndexManager::StageDeleteIndexEntry(const std::string& index_table,
                                           const std::string& index_row,
                                           Timestamp ts,
                                           std::vector<PutRequest>* ops) {
  if (stats_ != nullptr) stats_->AddAsyncIndexPut();
  DIFFINDEX_FAILPOINT("index.delete");
  PutRequest req;
  req.table = index_table;
  req.row = index_row;
  req.cells = {Cell{"", "", /*is_delete=*/true}};
  req.ts = ts;
  ops->push_back(std::move(req));
  return Status::OK();
}

void IndexManager::ProcessTaskBatch(const std::vector<IndexTask>& tasks,
                                    std::vector<Status>* statuses) {
  statuses->assign(tasks.size(), Status::OK());
  std::vector<PutRequest> staged;
  std::vector<bool> shipped(tasks.size(), false);
  for (size_t i = 0; i < tasks.size(); i++) {
    const IndexTask& task = tasks[i];
    // Base reads for this task's PI/DI values are about to happen; base
    // writes racing the batched resolve interleave here (BA2).
    CHECK_YIELD("index.batch.resolve");
    // Resolve BOTH values before staging anything for this task: a
    // resolution error must stage nothing, or a half-staged task would
    // ship its PI now and retry its DI later against a changed base.
    std::optional<std::string> new_value;
    Status s = ResolveIndexValue(task, task.ts, /*use_task_cells=*/true,
                                 /*foreground=*/false, &new_value);
    // (retraction point, old value there) for every covered put.
    std::vector<std::pair<Timestamp, std::string>> old_entries;
    if (s.ok()) {
      for (const Timestamp old_ts : RetractionPoints(task)) {
        std::optional<std::string> old_value;
        s = ResolveIndexValue(task, old_ts - kDelta,
                              /*use_task_cells=*/false,
                              /*foreground=*/false, &old_value);
        if (!s.ok()) break;
        if (old_value.has_value()) {
          old_entries.emplace_back(old_ts, std::move(*old_value));
        }
      }
    }
    if (!s.ok()) {
      (*statuses)[i] = s;
      continue;
    }
    const size_t before = staged.size();
    if (new_value.has_value()) {
      s = StagePutIndexEntry(task.index.index_table,
                             EncodeIndexRow(*new_value, task.row), task.ts,
                             &staged);
    }
    for (const auto& [old_ts, old_value] : old_entries) {
      if (!s.ok()) break;
      s = StageDeleteIndexEntry(task.index.index_table,
                                EncodeIndexRow(old_value, task.row),
                                old_ts - kDelta, &staged);
    }
    if (!s.ok()) {
      // Injected PI/DI failure: retract the task's half-staged ops so the
      // shipped batch carries only whole tasks.
      staged.resize(before);
      (*statuses)[i] = s;
      continue;
    }
    shipped[i] = staged.size() > before;
  }
  if (staged.empty()) return;

  // The whole drain unit ships as one RPC: readers here still see the
  // pre-batch index state.
  CHECK_YIELD("index.batch.ship");
  Status ship = internal_client_->MultiPutBatch(std::move(staged));
  if (!ship.ok()) {
    // All-or-error: a transport failure fails every task that staged work;
    // the whole batch retries and re-delivery is idempotent because index
    // entries reuse the base timestamps.
    for (size_t i = 0; i < tasks.size(); i++) {
      if (shipped[i] && (*statuses)[i].ok()) (*statuses)[i] = ship;
    }
  }
}

}  // namespace diffindex
