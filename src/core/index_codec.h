// Index row encoding.
//
// "In Diff-Index we make the index table a key-only one, i.e., an index
// row uses the concatenation of the index value and rowkey of the base
// entry as its rowkey, with a null value" (Section 4).
//
// The concatenation must be (a) order-preserving on the value, so range
// queries map to contiguous index-key ranges, and (b) unambiguous, so the
// base row key can be recovered. Values may contain arbitrary bytes, so
// each value is escaped into a string free of 0x00 (the cell separator)
// and 0x01-pairs are used as the value/rowkey terminator:
//
//   0x00 -> 0x01 0x02,  0x01 -> 0x01 0x03,  terminator = 0x01 0x01
//
// Escaping preserves byte order, and the terminator sorts below every
// escaped continuation byte, so: value order == encoded order, and all
// entries of one value are contiguous.
//
// Order-preserving value encodings for typed columns (uint64, double,
// string) and for composite (multi-column) indexes are provided as well.

#ifndef DIFFINDEX_CORE_INDEX_CODEC_H_
#define DIFFINDEX_CORE_INDEX_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/slice.h"

namespace diffindex {

// ---- Escaping ----

// Escapes `raw` into a 0x00-free, order-preserving representation.
std::string EscapeIndexComponent(const Slice& raw);

// Inverse of EscapeIndexComponent; false on malformed input.
bool UnescapeIndexComponent(const Slice& escaped, std::string* raw);

// ---- Index rows ----

// v_encoded ⊕ base_row: escape(v) + terminator + base_row.
std::string EncodeIndexRow(const Slice& value_encoded, const Slice& base_row);

// Splits an index row back into (value_encoded, base_row).
bool DecodeIndexRow(const Slice& index_row, std::string* value_encoded,
                    std::string* base_row);

// Scan bounds covering exactly the entries with value == v_encoded.
std::string IndexScanStartForValue(const Slice& value_encoded);
std::string IndexScanEndForValue(const Slice& value_encoded);

// Scan bounds covering values in [lo, hi) (encoded-value order).
std::string IndexRangeStart(const Slice& value_lo_encoded);
std::string IndexRangeEnd(const Slice& value_hi_encoded_exclusive);

// ---- Typed value encodings (order-preserving byte strings) ----

std::string EncodeUint64IndexValue(uint64_t v);  // big-endian
bool DecodeUint64IndexValue(const Slice& encoded, uint64_t* v);

// Total order over doubles (NaN excluded): sign-magnitude flip trick.
std::string EncodeDoubleIndexValue(double v);

inline std::string EncodeStringIndexValue(const Slice& v) {
  return v.ToString();
}

// Composite index value: order-preserving tuple of components
// (lexicographic, component-wise).
std::string EncodeCompositeIndexValue(
    const std::vector<std::string>& components);

// Inverse of EncodeCompositeIndexValue; false on malformed input. Used by
// covered-index projections to materialize the component columns straight
// from an index entry.
bool DecodeCompositeIndexValue(const Slice& encoded,
                               std::vector<std::string>* components);

}  // namespace diffindex

#endif  // DIFFINDEX_CORE_INDEX_CODEC_H_
