// A miniature query layer standing in for the paper's Big SQL
// integration (Section 7): "Query Engine uses index metadata in query
// planning, and accesses indexes via the aforementioned getByIndex API in
// query execution."
//
// Queries are conjunctions of column predicates. The planner consults the
// catalog: an equality predicate on an indexed column plans as an index
// exact-match; range predicates on an indexed column plan as an index
// range scan; otherwise the query falls back to a full table scan.
// Predicates the chosen access path cannot answer are applied as residual
// filters on the fetched rows.

#ifndef DIFFINDEX_CORE_QUERY_H_
#define DIFFINDEX_CORE_QUERY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/diff_index_client.h"

namespace diffindex {

class ReadEngine;

enum class PredicateOp { kEq, kLt, kLe, kGt, kGe };

// Values compare in encoded byte order — use the index_codec
// Encode*IndexValue helpers for typed columns, exactly as with the index
// APIs.
struct Predicate {
  std::string column;
  PredicateOp op = PredicateOp::kEq;
  std::string value_encoded;
};

struct Query {
  std::string table;
  std::vector<Predicate> predicates;  // conjunction
  // Columns to return; empty = all.
  std::vector<std::string> projection;
  uint32_t limit = 0;  // 0 = unlimited
};

enum class PlanKind { kIndexExact, kIndexRange, kFullScan };

struct QueryPlan {
  PlanKind kind = PlanKind::kFullScan;
  std::string index_name;       // for the index plans
  std::string exact_value;      // kIndexExact
  std::string range_start;      // kIndexRange, encoded values; "" = open
  std::string range_end;        // exclusive; "" = open
  std::vector<Predicate> residual;  // applied after the fetch
  std::string explanation;      // EXPLAIN-style one-liner
};

class QueryEngine {
 public:
  explicit QueryEngine(DiffIndexClient* client);
  ~QueryEngine();

  // Chooses the access path from the catalog; pure planning, no I/O
  // beyond the cached layout.
  Status Plan(const Query& query, QueryPlan* plan);

  // Plan + execute + residual filter + projection.
  Status Execute(const Query& query, std::vector<ScannedRow>* rows);

  Status Explain(const Query& query, std::string* text);

  // The scatter-gather scan engine behind kIndexRange execution
  // (query/engine.h); exposed so callers can tune or share it.
  ReadEngine* read_engine() { return read_engine_.get(); }

 private:
  Status FetchByHits(const Query& query, const std::vector<IndexHit>& hits,
                     std::vector<ScannedRow>* rows);
  static bool RowMatches(const ScannedRow& row,
                         const std::vector<Predicate>& predicates);
  static void Project(const std::vector<std::string>& projection,
                      std::vector<ScannedRow>* rows);

  DiffIndexClient* const client_;
  std::unique_ptr<ReadEngine> read_engine_;
};

}  // namespace diffindex

#endif  // DIFFINDEX_CORE_QUERY_H_
