// Dense columns (Section 7): "a dense column is a column comprising
// multiple fields each of which is with a different type and encoding.
// Using dense columns, which is basically combining multiple columns into
// one, can reduce the storage overhead brought by a KV store like HBase"
// — one cell carries several typed fields instead of one cell per field
// (saving the per-cell key/timestamp overhead).
//
// Diff-Index can build an index on a *field inside* a dense column: the
// IndexDescriptor names the field and carries the schema, and the
// maintenance schemes extract + order-preservingly encode the field value
// when forming index rows.

#ifndef DIFFINDEX_CORE_DENSE_COLUMN_H_
#define DIFFINDEX_CORE_DENSE_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/slice.h"
#include "util/status.h"

namespace diffindex {

enum class DenseFieldType : uint8_t {
  kString = 0,
  kUint64 = 1,
  kDouble = 2,
  kBool = 3,
};

struct DenseField {
  std::string name;
  DenseFieldType type = DenseFieldType::kString;
};

// One field's value (tagged by the schema's type).
struct DenseValue {
  DenseFieldType type = DenseFieldType::kString;
  std::string string_value;
  uint64_t uint_value = 0;
  double double_value = 0;
  bool bool_value = false;

  static DenseValue String(std::string s);
  static DenseValue Uint64(uint64_t v);
  static DenseValue Double(double v);
  static DenseValue Bool(bool v);
};

class DenseColumnSchema {
 public:
  DenseColumnSchema() = default;
  explicit DenseColumnSchema(std::vector<DenseField> fields)
      : fields_(std::move(fields)) {}

  const std::vector<DenseField>& fields() const { return fields_; }
  // -1 if absent.
  int FieldIndex(const Slice& name) const;

  // Packs one value per schema field (positional) into a cell value.
  Status Encode(const std::vector<DenseValue>& values,
                std::string* out) const;
  Status Decode(const Slice& encoded, std::vector<DenseValue>* values) const;
  // Extracts a single field without materializing the rest.
  Status GetField(const Slice& encoded, const Slice& field_name,
                  DenseValue* value) const;

  // Order-preserving byte encoding of one field's value, for index rows
  // (strings verbatim; uint64/double via the index_codec encodings; bool
  // as one byte).
  static std::string EncodeFieldForIndex(const DenseValue& value);

  // Schema (de)serialization for the catalog wire format.
  void EncodeTo(std::string* out) const;
  static bool DecodeFrom(Slice* in, DenseColumnSchema* schema);

 private:
  std::vector<DenseField> fields_;
};

}  // namespace diffindex

#endif  // DIFFINDEX_CORE_DENSE_COLUMN_H_
