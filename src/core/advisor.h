// Workload-aware scheme selection — the paper's future work ("Ideally
// Diff-Index should be able to adaptively choose a scheme by
// understanding consistency requirements and observing workload
// characteristics such as read/write ratio. Currently user selection is
// required and we leave adaptive scheme selection for future work",
// Section 3.4).
//
// SchemeAdvisor encodes Section 3.4's selection principles as an explicit
// decision procedure over observed workload statistics:
//   (1) use sync-full or sync-insert when consistency is needed;
//   (2) use sync-full when read latency is critical;
//   (3) use sync-insert when update latency is critical;
//   (4) use async-simple when consistency is not a concern;
//   (5) use async-session when read-your-write semantics is needed.
//
// Master::AlterIndexScheme applies a recommendation live: schemes are
// consulted per put from the catalog snapshot, so a switch takes effect
// on the next write. Switching away from sync-insert leaves previously
// deferred deletions behind; run IndexBackfill::Cleanse afterwards (the
// advisor's explanation says so when it applies).

#ifndef DIFFINDEX_CORE_ADVISOR_H_
#define DIFFINDEX_CORE_ADVISOR_H_

#include <cstdint>
#include <string>

#include "cluster/catalog.h"

namespace diffindex {

// Observed/declared workload characteristics for one index.
struct IndexWorkloadProfile {
  uint64_t updates = 0;
  uint64_t reads = 0;
  // Average number of rows an index read returns (the K of Table 2 —
  // sync-insert pays K base reads per read).
  double avg_rows_per_read = 1.0;

  // Application-declared consistency requirements.
  bool requires_consistency = true;
  bool requires_read_your_writes = false;
};

struct AdvisorOptions {
  // A workload with update fraction above this is "update-latency
  // critical" (principle 3); below `read_critical_ratio` it is
  // "read-latency critical" (principle 2).
  double update_critical_ratio = 0.7;
  double read_critical_ratio = 0.3;
  // sync-insert's read penalty grows with K; above this the advisor
  // refuses to recommend it even for write-heavy workloads.
  double max_rows_per_read_for_insert = 64.0;
};

class SchemeAdvisor {
 public:
  struct Recommendation {
    IndexScheme scheme = IndexScheme::kSyncFull;
    std::string reason;
    // True when switching to `scheme` from sync-insert should be followed
    // by a cleanse pass (stale entries stop being repaired lazily).
    bool cleanse_after_switch_from_insert = false;
  };

  static Recommendation Recommend(const IndexWorkloadProfile& profile,
                                  const AdvisorOptions& options = {});

  // Convenience: profile built from two counters and defaults.
  static IndexScheme RecommendScheme(uint64_t updates, uint64_t reads,
                                     bool requires_consistency,
                                     bool requires_read_your_writes);
};

}  // namespace diffindex

#endif  // DIFFINDEX_CORE_ADVISOR_H_
