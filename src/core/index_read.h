// Index reads (getByIndex): exact-match and range lookups against a
// global index, with the sync-insert double-check-and-clean routine of
// Algorithm 2 — each candidate rowkey is verified against the base table
// and stale entries are lazily deleted (read-repair).

#ifndef DIFFINDEX_CORE_INDEX_READ_H_
#define DIFFINDEX_CORE_INDEX_READ_H_

#include <memory>
#include <string>
#include <vector>

#include "cluster/client.h"
#include "core/op_stats.h"

namespace diffindex {

struct IndexHit {
  std::string base_row;
  // Encoded index value the entry carried (needed for range queries and
  // for session-cache merging).
  std::string value_encoded;
  Timestamp ts = 0;
};

class IndexReader {
 public:
  // stats may be null.
  IndexReader(std::shared_ptr<Client> client, OpStats* stats)
      : client_(std::move(client)), stats_(stats) {}

  // All base rowkeys whose index column equals value_encoded. Applies
  // read-repair iff the index's scheme is sync-insert.
  Status GetByIndex(const std::string& base_table,
                    const std::string& index_name,
                    const std::string& value_encoded,
                    std::vector<IndexHit>* hits);

  // Rowkeys with value in [lo, hi) (encoded order). limit 0 = unlimited.
  Status RangeByIndex(const std::string& base_table,
                      const std::string& index_name,
                      const std::string& value_lo_encoded,
                      const std::string& value_hi_encoded, uint32_t limit,
                      std::vector<IndexHit>* hits);

  // Looks up the index descriptor in the cached catalog.
  Status FindIndex(const std::string& base_table,
                   const std::string& index_name, IndexDescriptor* index);

 private:
  // Scans the raw index keyspace [start, end), decoding entries. For a
  // global index this is one range scan over the (partitioned) index
  // table; for a local index it is a broadcast to every region of the
  // base table (Section 3.1's cost asymmetry).
  Status ScanIndex(const IndexDescriptor& index, const std::string& start,
                   const std::string& end, uint32_t limit,
                   std::vector<IndexHit>* hits);

  Status BroadcastLocalScan(const IndexDescriptor& index,
                            const std::string& base_table,
                            const std::string& start, const std::string& end,
                            uint32_t limit, std::vector<IndexHit>* hits);

  // Algorithm 2 SR2: double-check hits against the base table; stale
  // entries are removed from `hits` AND deleted from the index table.
  Status RepairHits(const std::string& base_table,
                    const IndexDescriptor& index,
                    std::vector<IndexHit>* hits);

  std::shared_ptr<Client> client_;
  OpStats* const stats_;
};

}  // namespace diffindex

#endif  // DIFFINDEX_CORE_INDEX_READ_H_
