// AUQ + APS (Section 5.1): the asynchronous update queue buffers index
// maintenance work so a base put can be acknowledged as soon as it is
// logged and enqueued; the asynchronous processing service drains the
// queue in the background (BA1-BA4 of Algorithm 4).
//
// The queue also backs the failure-handling of the *sync* schemes: a
// failed PI/RB/DI is enqueued here and retried until it succeeds, which is
// how causal consistency degrades to eventual instead of failing the base
// put (Section 6.2).
//
// Flush coordination (Section 5.3, Figure 5): Pause() blocks new Enqueue
// calls; WaitDrained() returns once the queue is empty and no task is
// mid-flight, establishing PR(Flushed) = ∅ before the memtable flush and
// WAL roll-forward.

#ifndef DIFFINDEX_CORE_AUQ_H_
#define DIFFINDEX_CORE_AUQ_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/catalog.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/histogram.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/timestamp_oracle.h"

namespace diffindex {

// One unit of index maintenance: apply index updates for one (row,
// column-set) base mutation against one index.
struct IndexTask {
  std::string base_table;
  std::string row;
  // New values of the index's components as written by the base put
  // (empty + deleted=true for a column delete). Values not in the put are
  // resolved by the processor from the base table.
  std::vector<Cell> cells;
  Timestamp ts = 0;
  // The RB/DI anchor of the base put this task was created for: the old
  // value is read and its entry deleted at old_ts - δ. Creation sites set
  // old_ts = ts; 0 means "unset" (a directly constructed task), treated
  // as ts.
  Timestamp old_ts = 0;
  // old_ts of every task coalesced into this one. The processor replays
  // the RB/DI retraction at EACH covered point in addition to old_ts: an
  // absorbed task's index entry may already exist (crash replay
  // re-enqueues already-delivered puts; a lost-response retry may have
  // applied server-side), so collapsing to a single point would leave
  // phantom entries behind.
  std::vector<Timestamp> covered_old_ts;
  IndexDescriptor index;
  int attempts = 0;
  // Number of tasks coalesced INTO this one (0 for a plain task). The
  // survivor accounts for 1 + absorbed tasks in processed counts and the
  // depth gauge, so `processed == accepted` stays exact under batching.
  int absorbed = 0;
  // Trace of the base put that spawned this task (inactive if untraced),
  // so the APS drain span chains to the client's request.
  obs::TraceContext trace;
};

// What Enqueue does when the queue already holds max_depth tasks (§5's
// queue-bounding discussion). Only applies when max_depth > 0.
enum class AuqOverflowPolicy {
  // Block the enqueuing put until the APS frees capacity — the original
  // max_depth behavior. Backpressure surfaces as put latency; no index
  // update is ever dropped, so the final index state is byte-identical to
  // an unbounded queue (the scheme-equivalence suite pins this).
  kBlock,
  // Move the overflowing task straight to the dead-letter list (counter
  // `auq.shed`, gauge `auq.dead_letters`) and ack the put. The base write
  // stays acked; the index update waits for an operator / Cleanse repair.
  kShedToDeadLetter,
  // Accept the task beyond max_depth without blocking: the bound degrades
  // to plain asynchronous eventual delivery (counter `auq.degraded`).
  // Convergence is unchanged — every task is still delivered.
  kDegradeToAsync,
};

struct AuqOptions {
  int worker_threads = 2;
  // Retry backoff for failed tasks: attempt n waits min(n, 8) * this.
  int retry_backoff_ms = 2;
  // Sampling rate for the index-staleness probe (Figure 11): 1 sample per
  // `staleness_sample_every` tasks; 0 disables.
  int staleness_sample_every = 1000;
  // Queue capacity; what happens when it is reached is overflow_policy's
  // call (kBlock = the historical blocking behavior). 0 = unbounded.
  size_t max_depth = 0;
  AuqOverflowPolicy overflow_policy = AuqOverflowPolicy::kBlock;
  // Artificial per-task delay before processing — a test/bench knob that
  // throttles the APS to magnify index staleness (Figure 11's saturated
  // regime on demand).
  int process_delay_ms = 0;
  // Poison-task escape hatch: after this many failed attempts a task moves
  // to the dead-letter list (gauge `auq.dead_letters`, accessor
  // DrainDeadLetters()) instead of retrying again — e.g. a task whose
  // index descriptor was dropped mid-flight would otherwise spin forever.
  // 0 = retry forever, preserving the paper's eventual-delivery semantics.
  int max_attempts = 0;
  // Batched drain: a worker dequeues up to this many tasks at once,
  // coalesces same-(index, row) tasks to the newest timestamp, and hands
  // the survivors to the batch processor in one call. 1 = the classic
  // one-task-per-dequeue path (default). Exports histogram
  // `auq.batch_size` and counter `auq.coalesced`.
  int drain_batch_size = 1;
  // Observability sinks; either may be null. Exports gauge `auq.depth`,
  // counters `auq.enqueued/processed/retries`, histograms
  // `auq.task_micros` (per-task processing time), `auq.staleness_micros`,
  // and `span.aps.task.<scheme>` spans chained to the base put's trace.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceCollector* traces = nullptr;
};

class AsyncUpdateQueue {
 public:
  // The processor performs BA2-BA4 for one task; a non-OK return puts the
  // task back for retry.
  using Processor = std::function<Status(const IndexTask& task)>;
  // Batched form: performs BA2-BA4 for a coalesced batch, filling one
  // status per task. Optional — without it, a drained batch falls back to
  // per-task Processor calls.
  using BatchProcessor = std::function<void(const std::vector<IndexTask>& tasks,
                                            std::vector<Status>* statuses)>;

  AsyncUpdateQueue(const AuqOptions& options, Processor processor,
                   BatchProcessor batch_processor = nullptr);
  ~AsyncUpdateQueue();

  AsyncUpdateQueue(const AsyncUpdateQueue&) = delete;
  AsyncUpdateQueue& operator=(const AsyncUpdateQueue&) = delete;

  // Blocks while the queue is paused (or full). Returns false after
  // Shutdown.
  bool Enqueue(IndexTask task) EXCLUDES(mu_);

  // Flush protocol. Pause/Resume nest (two regions may flush at once).
  void Pause() EXCLUDES(mu_);
  void Resume() EXCLUDES(mu_);
  // Waits until the queue is empty and no worker holds a task.
  void WaitDrained() EXCLUDES(mu_);

  // Graceful: workers finish the queued backlog, then exit.
  void Shutdown();
  // Crash semantics: queued and in-flight tasks are dropped, not delivered
  // — exactly what a real server crash does to its AUQ. Recovery re-creates
  // the lost tasks from WAL replay (Section 5.3). Also squares the shared
  // `auq.depth` gauge so post-crash snapshots don't count ghost tasks.
  void Abandon();

  // Removes and returns all dead-lettered tasks (see
  // AuqOptions::max_attempts).
  std::vector<IndexTask> DrainDeadLetters() EXCLUDES(mu_);
  size_t dead_letters() const EXCLUDES(mu_);

  size_t depth() const EXCLUDES(mu_);
  // Queued backlog only (depth() minus in-flight). Under kBlock the
  // enqueue predicate caps the deque at max_depth entries, so this stays
  // <= max_depth on the failure-free path (a failure-requeued coalesced
  // survivor re-enters counting 1 + absorbed); workers may additionally
  // hold up to worker_threads * drain_batch_size tasks in flight.
  size_t queued_depth() const EXCLUDES(mu_);
  uint64_t processed() const;
  uint64_t retries() const;

  // Staleness probe: distribution of (index visible) - (base ts), in
  // microseconds — the T2 - T1 time-lag of Figure 11.
  const Histogram& staleness() const { return staleness_; }

 private:
  void WorkerLoop();
  void ShutdownInternal(bool abandon);
  // Processes one dequeued batch end to end (coalesce, deliver, account);
  // the caller already incremented in_flight_ by the batch's task count.
  void ProcessBatch(std::vector<IndexTask> batch);
  // Tasks represented by the queued backlog, counting coalesced-away ones
  // (sum of 1 + absorbed) — the number the depth gauge tracks.
  size_t QueuedTaskCountLocked() const REQUIRES(mu_);

  const AuqOptions options_;
  const Processor processor_;
  const BatchProcessor batch_processor_;

  // mu_ guards the whole queue state machine; the three CondVars wake the
  // three waiter populations. The drain-barrier invariant (§5.3):
  // WaitDrained returns only when queue_ is empty AND in_flight_ == 0,
  // both read under mu_ — a task is never outside both.
  // Acquired under a region's flush gate only (PostApply's Enqueue and
  // PreFlush's Pause/WaitDrained run while the caller holds the gate);
  // never held across a call that takes another ranked lock. The
  // ACQUIRED_AFTER + LockRank pair feeds the lock-order lint and the
  // runtime validator (util/lock_order.h).
  mutable Mutex mu_ ACQUIRED_AFTER(flush_gate_){LockRank::kAuqMu, "auq.mu_"};
  CondVar intake_cv_;   // waiting to enqueue (pause/full)
  CondVar work_cv_;     // workers waiting for tasks
  CondVar drained_cv_;  // flushers waiting for drain
  std::deque<IndexTask> queue_ GUARDED_BY(mu_);
  std::vector<IndexTask> dead_letters_ GUARDED_BY(mu_);
  int paused_ GUARDED_BY(mu_) = 0;
  int in_flight_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;
  bool abandoned_ GUARDED_BY(mu_) = false;

  std::vector<std::thread> workers_;
  std::atomic<uint64_t> processed_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> task_counter_{0};
  Histogram staleness_;

  // Cached registry instruments (null when options_.metrics is null) —
  // resolved once in the constructor to keep the hot path lock-free.
  obs::Gauge* depth_gauge_ = nullptr;
  obs::Gauge* dead_letter_gauge_ = nullptr;
  obs::Counter* dead_letters_lost_counter_ = nullptr;
  obs::Counter* enqueued_counter_ = nullptr;
  obs::Counter* processed_counter_ = nullptr;
  obs::Counter* retries_counter_ = nullptr;
  obs::Counter* coalesced_counter_ = nullptr;
  obs::Counter* shed_counter_ = nullptr;
  obs::Counter* degraded_counter_ = nullptr;
  Histogram* task_micros_hist_ = nullptr;
  Histogram* staleness_hist_ = nullptr;
  Histogram* batch_size_hist_ = nullptr;
};

}  // namespace diffindex

#endif  // DIFFINDEX_CORE_AUQ_H_
