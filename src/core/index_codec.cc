#include "core/index_codec.h"

#include <cstring>

namespace diffindex {

namespace {
constexpr char kEsc = '\x01';
constexpr char kEscZero = '\x02';   // 0x01 0x02 encodes raw 0x00
constexpr char kEscOne = '\x03';    // 0x01 0x03 encodes raw 0x01
constexpr char kTermByte = '\x01';  // 0x01 0x01 is the terminator
}  // namespace

std::string EscapeIndexComponent(const Slice& raw) {
  std::string out;
  out.reserve(raw.size() + 4);
  for (size_t i = 0; i < raw.size(); i++) {
    const char c = raw[i];
    if (c == '\x00') {
      out.push_back(kEsc);
      out.push_back(kEscZero);
    } else if (c == kEsc) {
      out.push_back(kEsc);
      out.push_back(kEscOne);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

bool UnescapeIndexComponent(const Slice& escaped, std::string* raw) {
  raw->clear();
  raw->reserve(escaped.size());
  for (size_t i = 0; i < escaped.size(); i++) {
    const char c = escaped[i];
    if (c != kEsc) {
      raw->push_back(c);
      continue;
    }
    if (i + 1 >= escaped.size()) return false;
    i++;
    if (escaped[i] == kEscZero) {
      raw->push_back('\x00');
    } else if (escaped[i] == kEscOne) {
      raw->push_back('\x01');
    } else {
      return false;  // 0x01 0x01 (terminator) must not appear inside
    }
  }
  return true;
}

std::string EncodeIndexRow(const Slice& value_encoded,
                           const Slice& base_row) {
  std::string row = EscapeIndexComponent(value_encoded);
  row.push_back(kEsc);
  row.push_back(kTermByte);
  row.append(base_row.data(), base_row.size());
  return row;
}

bool DecodeIndexRow(const Slice& index_row, std::string* value_encoded,
                    std::string* base_row) {
  // Scan for the terminator pair; escape pairs consume two bytes so the
  // parse is unambiguous.
  for (size_t i = 0; i < index_row.size(); i++) {
    if (index_row[i] != kEsc) continue;
    if (i + 1 >= index_row.size()) return false;
    const char next = index_row[i + 1];
    if (next == kTermByte) {
      if (!UnescapeIndexComponent(Slice(index_row.data(), i),
                                  value_encoded)) {
        return false;
      }
      base_row->assign(index_row.data() + i + 2, index_row.size() - i - 2);
      return true;
    }
    if (next != kEscZero && next != kEscOne) return false;
    i++;  // skip the escape payload byte
  }
  return false;  // no terminator
}

std::string IndexScanStartForValue(const Slice& value_encoded) {
  std::string s = EscapeIndexComponent(value_encoded);
  s.push_back(kEsc);
  s.push_back(kTermByte);
  return s;
}

std::string IndexScanEndForValue(const Slice& value_encoded) {
  std::string s = EscapeIndexComponent(value_encoded);
  s.push_back(kEsc);
  s.push_back(kEscZero);  // 0x01 0x02 > 0x01 0x01, < any longer value
  return s;
}

std::string IndexRangeStart(const Slice& value_lo_encoded) {
  return EscapeIndexComponent(value_lo_encoded);
}

std::string IndexRangeEnd(const Slice& value_hi_encoded_exclusive) {
  return EscapeIndexComponent(value_hi_encoded_exclusive);
}

std::string EncodeUint64IndexValue(uint64_t v) {
  std::string out(8, '\0');
  for (int i = 7; i >= 0; i--) {
    out[i] = static_cast<char>(v & 0xff);
    v >>= 8;
  }
  return out;
}

bool DecodeUint64IndexValue(const Slice& encoded, uint64_t* v) {
  if (encoded.size() != 8) return false;
  uint64_t result = 0;
  for (int i = 0; i < 8; i++) {
    result = (result << 8) | static_cast<unsigned char>(encoded[i]);
  }
  *v = result;
  return true;
}

std::string EncodeDoubleIndexValue(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  memcpy(&bits, &v, sizeof(bits));
  // Positive numbers: flip the sign bit. Negative: flip everything. The
  // result compares in numeric order as unsigned bytes.
  if (bits & (1ull << 63)) {
    bits = ~bits;
  } else {
    bits |= (1ull << 63);
  }
  return EncodeUint64IndexValue(bits);
}

std::string EncodeCompositeIndexValue(
    const std::vector<std::string>& components) {
  // esc(c1) + term + esc(c2) + term + ... — the same order-preserving
  // tuple scheme as the index row itself. The result is then escaped
  // again as a whole by EncodeIndexRow.
  std::string out;
  for (size_t i = 0; i < components.size(); i++) {
    if (i > 0) {
      out.push_back(kEsc);
      out.push_back(kTermByte);
    }
    out.append(EscapeIndexComponent(components[i]));
  }
  return out;
}

bool DecodeCompositeIndexValue(const Slice& encoded,
                               std::vector<std::string>* components) {
  components->clear();
  size_t component_start = 0;
  for (size_t i = 0; i < encoded.size(); i++) {
    if (encoded[i] != kEsc) continue;
    if (i + 1 >= encoded.size()) return false;
    const char next = encoded[i + 1];
    if (next == kTermByte) {
      components->emplace_back();
      if (!UnescapeIndexComponent(
              Slice(encoded.data() + component_start, i - component_start),
              &components->back())) {
        return false;
      }
      i++;  // skip the terminator pair
      component_start = i + 1;
    } else if (next == kEscZero || next == kEscOne) {
      i++;  // skip the escape payload byte
    } else {
      return false;
    }
  }
  components->emplace_back();
  return UnescapeIndexComponent(
      Slice(encoded.data() + component_start,
            encoded.size() - component_start),
      &components->back());
}

}  // namespace diffindex
