// Operation counters matching the columns of Table 2 (I/O cost of
// Diff-Index schemes): base puts, base reads, index puts (incl. deletes)
// and index reads, split by foreground (inside a client-visible request)
// and asynchronous (AUQ/APS background) work — the "[ ]" entries in the
// table.

#ifndef DIFFINDEX_CORE_OP_STATS_H_
#define DIFFINDEX_CORE_OP_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace diffindex {

class OpStats {
 public:
  struct Snapshot {
    uint64_t base_put = 0;
    uint64_t base_read = 0;
    uint64_t index_put = 0;    // includes index deletes (same cost in LSM)
    uint64_t index_read = 0;
    uint64_t async_base_read = 0;
    uint64_t async_index_put = 0;

    std::string ToString() const;
  };

  void AddBasePut() { base_put_.fetch_add(1, std::memory_order_relaxed); }
  void AddBaseRead() { base_read_.fetch_add(1, std::memory_order_relaxed); }
  void AddIndexPut() { index_put_.fetch_add(1, std::memory_order_relaxed); }
  void AddIndexRead() { index_read_.fetch_add(1, std::memory_order_relaxed); }
  void AddAsyncBaseRead() {
    async_base_read_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddAsyncIndexPut() {
    async_index_put_.fetch_add(1, std::memory_order_relaxed);
  }

  Snapshot snapshot() const;
  void Reset();

 private:
  std::atomic<uint64_t> base_put_{0};
  std::atomic<uint64_t> base_read_{0};
  std::atomic<uint64_t> index_put_{0};
  std::atomic<uint64_t> index_read_{0};
  std::atomic<uint64_t> async_base_read_{0};
  std::atomic<uint64_t> async_index_put_{0};
};

}  // namespace diffindex

#endif  // DIFFINDEX_CORE_OP_STATS_H_
