// Operation counters matching the columns of Table 2 (I/O cost of
// Diff-Index schemes): base puts, base reads, index puts (incl. deletes)
// and index reads, split by foreground (inside a client-visible request)
// and asynchronous (AUQ/APS background) work — the "[ ]" entries in the
// table.

#ifndef DIFFINDEX_CORE_OP_STATS_H_
#define DIFFINDEX_CORE_OP_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace diffindex {

class OpStats {
 public:
  struct Snapshot {
    uint64_t base_put = 0;
    uint64_t base_read = 0;
    uint64_t index_put = 0;    // includes index deletes (same cost in LSM)
    uint64_t index_read = 0;
    uint64_t async_base_read = 0;
    uint64_t async_index_put = 0;

    std::string ToString() const;
  };

  void AddBasePut() {
    base_put_.fetch_add(1, std::memory_order_relaxed);
    if (c_base_put_ != nullptr) c_base_put_->Add();
  }
  void AddBaseRead() {
    base_read_.fetch_add(1, std::memory_order_relaxed);
    if (c_base_read_ != nullptr) c_base_read_->Add();
  }
  void AddIndexPut() {
    index_put_.fetch_add(1, std::memory_order_relaxed);
    if (c_index_put_ != nullptr) c_index_put_->Add();
  }
  void AddIndexRead() {
    index_read_.fetch_add(1, std::memory_order_relaxed);
    if (c_index_read_ != nullptr) c_index_read_->Add();
  }
  void AddAsyncBaseRead() {
    async_base_read_.fetch_add(1, std::memory_order_relaxed);
    if (c_async_base_read_ != nullptr) c_async_base_read_->Add();
  }
  void AddAsyncIndexPut() {
    async_index_put_.fetch_add(1, std::memory_order_relaxed);
    if (c_async_index_put_ != nullptr) c_async_index_put_->Add();
  }

  // Mirrors every counter into `registry` under `io.*` names (Table 2
  // exported live). Call before concurrent use; not thread-safe itself.
  void Bind(obs::MetricsRegistry* registry);

  Snapshot snapshot() const;
  void Reset();

 private:
  std::atomic<uint64_t> base_put_{0};
  std::atomic<uint64_t> base_read_{0};
  std::atomic<uint64_t> index_put_{0};
  std::atomic<uint64_t> index_read_{0};
  std::atomic<uint64_t> async_base_read_{0};
  std::atomic<uint64_t> async_index_put_{0};

  // Optional registry mirrors (null until Bind).
  obs::Counter* c_base_put_ = nullptr;
  obs::Counter* c_base_read_ = nullptr;
  obs::Counter* c_index_put_ = nullptr;
  obs::Counter* c_index_read_ = nullptr;
  obs::Counter* c_async_base_read_ = nullptr;
  obs::Counter* c_async_index_put_ = nullptr;
};

}  // namespace diffindex

#endif  // DIFFINDEX_CORE_OP_STATS_H_
