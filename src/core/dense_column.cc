#include "core/dense_column.h"

#include "core/index_codec.h"
#include "util/coding.h"

namespace diffindex {

DenseValue DenseValue::String(std::string s) {
  DenseValue v;
  v.type = DenseFieldType::kString;
  v.string_value = std::move(s);
  return v;
}

DenseValue DenseValue::Uint64(uint64_t value) {
  DenseValue v;
  v.type = DenseFieldType::kUint64;
  v.uint_value = value;
  return v;
}

DenseValue DenseValue::Double(double value) {
  DenseValue v;
  v.type = DenseFieldType::kDouble;
  v.double_value = value;
  return v;
}

DenseValue DenseValue::Bool(bool value) {
  DenseValue v;
  v.type = DenseFieldType::kBool;
  v.bool_value = value;
  return v;
}

int DenseColumnSchema::FieldIndex(const Slice& name) const {
  for (size_t i = 0; i < fields_.size(); i++) {
    if (Slice(fields_[i].name) == name) return static_cast<int>(i);
  }
  return -1;
}

namespace {

void EncodeOne(const DenseField& field, const DenseValue& value,
               std::string* out) {
  switch (field.type) {
    case DenseFieldType::kString:
      PutLengthPrefixedSlice(out, value.string_value);
      break;
    case DenseFieldType::kUint64:
      PutVarint64(out, value.uint_value);
      break;
    case DenseFieldType::kDouble: {
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(value.double_value));
      memcpy(&bits, &value.double_value, sizeof(bits));
      PutFixed64(out, bits);
      break;
    }
    case DenseFieldType::kBool:
      out->push_back(value.bool_value ? 1 : 0);
      break;
  }
}

bool DecodeOne(const DenseField& field, Slice* in, DenseValue* value) {
  value->type = field.type;
  switch (field.type) {
    case DenseFieldType::kString:
      return GetLengthPrefixedString(in, &value->string_value);
    case DenseFieldType::kUint64:
      return GetVarint64(in, &value->uint_value);
    case DenseFieldType::kDouble: {
      uint64_t bits;
      if (!GetFixed64(in, &bits)) return false;
      memcpy(&value->double_value, &bits, sizeof(bits));
      return true;
    }
    case DenseFieldType::kBool: {
      if (in->empty()) return false;
      value->bool_value = (*in)[0] != 0;
      in->remove_prefix(1);
      return true;
    }
  }
  return false;
}

}  // namespace

Status DenseColumnSchema::Encode(const std::vector<DenseValue>& values,
                                 std::string* out) const {
  if (values.size() != fields_.size()) {
    return Status::InvalidArgument("dense column: value count mismatch");
  }
  out->clear();
  for (size_t i = 0; i < fields_.size(); i++) {
    if (values[i].type != fields_[i].type) {
      return Status::InvalidArgument("dense column: type mismatch for " +
                                     fields_[i].name);
    }
    EncodeOne(fields_[i], values[i], out);
  }
  return Status::OK();
}

Status DenseColumnSchema::Decode(const Slice& encoded,
                                 std::vector<DenseValue>* values) const {
  values->clear();
  values->reserve(fields_.size());
  Slice in = encoded;
  for (const DenseField& field : fields_) {
    DenseValue value;
    if (!DecodeOne(field, &in, &value)) {
      return Status::Corruption("dense column: truncated at " + field.name);
    }
    values->push_back(std::move(value));
  }
  if (!in.empty()) {
    return Status::Corruption("dense column: trailing bytes");
  }
  return Status::OK();
}

Status DenseColumnSchema::GetField(const Slice& encoded,
                                   const Slice& field_name,
                                   DenseValue* value) const {
  Slice in = encoded;
  for (const DenseField& field : fields_) {
    DenseValue current;
    if (!DecodeOne(field, &in, &current)) {
      return Status::Corruption("dense column: truncated at " + field.name);
    }
    if (Slice(field.name) == field_name) {
      *value = std::move(current);
      return Status::OK();
    }
  }
  return Status::NotFound("dense column: no field " + field_name.ToString());
}

std::string DenseColumnSchema::EncodeFieldForIndex(const DenseValue& value) {
  switch (value.type) {
    case DenseFieldType::kString:
      return value.string_value;
    case DenseFieldType::kUint64:
      return EncodeUint64IndexValue(value.uint_value);
    case DenseFieldType::kDouble:
      return EncodeDoubleIndexValue(value.double_value);
    case DenseFieldType::kBool:
      return std::string(1, value.bool_value ? '\x01' : '\x00');
  }
  return {};
}

void DenseColumnSchema::EncodeTo(std::string* out) const {
  PutVarint32(out, static_cast<uint32_t>(fields_.size()));
  for (const DenseField& field : fields_) {
    PutLengthPrefixedSlice(out, field.name);
    out->push_back(static_cast<char>(field.type));
  }
}

bool DenseColumnSchema::DecodeFrom(Slice* in, DenseColumnSchema* schema) {
  uint32_t n;
  if (!GetVarint32(in, &n)) return false;
  schema->fields_.clear();
  schema->fields_.reserve(n);
  for (uint32_t i = 0; i < n; i++) {
    DenseField field;
    if (!GetLengthPrefixedString(in, &field.name) || in->empty()) {
      return false;
    }
    const auto type = static_cast<uint8_t>((*in)[0]);
    in->remove_prefix(1);
    if (type > static_cast<uint8_t>(DenseFieldType::kBool)) return false;
    field.type = static_cast<DenseFieldType>(type);
    schema->fields_.push_back(std::move(field));
  }
  return true;
}

}  // namespace diffindex
