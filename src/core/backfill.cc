#include "core/backfill.h"

#include <algorithm>

#include "core/index_codec.h"

namespace diffindex {

Status IndexBackfill::FindIndex(const std::string& base_table,
                                const std::string& index_name,
                                IndexDescriptor* index) {
  CatalogSnapshot catalog = client_->catalog();
  const TableDescriptor* table = catalog.GetTable(base_table);
  if (table == nullptr) {
    return Status::NotFound("no such table: " + base_table);
  }
  for (const auto& candidate : table->indexes) {
    if (candidate.name == index_name) {
      *index = candidate;
      return Status::OK();
    }
  }
  return Status::NotFound("no such index: " + index_name);
}

Status IndexBackfill::Run(const std::string& base_table,
                          const std::string& index_name,
                          BackfillReport* report) {
  *report = BackfillReport{};
  IndexDescriptor index;
  DIFFINDEX_RETURN_NOT_OK(FindIndex(base_table, index_name, &index));

  std::vector<std::string> columns;
  columns.push_back(index.column);
  for (const auto& extra : index.extra_columns) columns.push_back(extra);

  std::string cursor;  // "" = table start
  for (;;) {
    std::vector<ScannedRow> rows;
    DIFFINDEX_RETURN_NOT_OK(client_->ScanRows(base_table, cursor, "",
                                              kMaxTimestamp, kScanBatch,
                                              &rows));
    if (rows.empty()) return Status::OK();

    for (const ScannedRow& row : rows) {
      report->rows_scanned++;
      std::vector<std::string> components;
      Timestamp entry_ts = 0;
      bool missing = false;
      for (const auto& column : columns) {
        const RowCell* found = nullptr;
        for (const RowCell& cell : row.cells) {
          if (cell.column == column) {
            found = &cell;
            break;
          }
        }
        if (found == nullptr) {
          missing = true;
          break;
        }
        std::string component = found->value;
        if (column == index.column &&
            !IndexComponentFromCell(index, found->value, &component).ok()) {
          missing = true;
          break;
        }
        components.push_back(std::move(component));
        entry_ts = std::max(entry_ts, found->ts);
      }
      if (missing) {
        report->rows_skipped++;
        continue;
      }
      const std::string value_encoded =
          components.size() == 1 ? components[0]
                                 : EncodeCompositeIndexValue(components);
      const std::string index_row = EncodeIndexRow(value_encoded, row.row);
      if (stats_ != nullptr) stats_->AddIndexPut();
      // Entry carries the base cell's own timestamp: a concurrent normal
      // update (newer ts) wins over the backfill, never the reverse.
      DIFFINDEX_RETURN_NOT_OK(client_->Put(
          index.index_table, index_row, {Cell{"", "", false}}, entry_ts));
      report->entries_written++;
    }
    cursor = rows.back().row + '\x01';  // next possible row key
  }
}

Status IndexBackfill::Verify(const std::string& base_table,
                             const std::string& index_name,
                             VerifyReport* report) {
  *report = VerifyReport{};
  IndexDescriptor index;
  DIFFINDEX_RETURN_NOT_OK(FindIndex(base_table, index_name, &index));
  if (index.is_local) {
    return Status::NotSupported(
        "verify targets global indexes (local indexes are rebuilt from "
        "base data on open and cannot drift persistently)");
  }

  std::vector<std::string> columns;
  columns.push_back(index.column);
  for (const auto& extra : index.extra_columns) columns.push_back(extra);

  // Direction 1: every index entry points at a base row that still
  // carries the entry's value.
  std::string cursor;
  for (;;) {
    std::vector<ScannedRow> rows;
    DIFFINDEX_RETURN_NOT_OK(client_->ScanRows(index.index_table, cursor, "",
                                              kMaxTimestamp, kScanBatch,
                                              &rows));
    if (rows.empty()) break;
    for (const ScannedRow& entry : rows) {
      report->entries_scanned++;
      std::string value_encoded, base_row;
      if (!DecodeIndexRow(entry.row, &value_encoded, &base_row)) {
        report->stale_entries++;
        continue;
      }
      std::vector<std::string> components;
      bool missing = false;
      for (const auto& column : columns) {
        std::string value;
        Status s = client_->GetCell(base_table, base_row, column,
                                    kMaxTimestamp, &value);
        if (s.ok() && column == index.column) {
          std::string component;
          s = IndexComponentFromCell(index, value, &component);
          value = std::move(component);
        }
        if (s.IsNotFound()) {
          missing = true;
          break;
        }
        DIFFINDEX_RETURN_NOT_OK(s);
        components.push_back(std::move(value));
      }
      const std::string current =
          missing ? std::string()
                  : (components.size() == 1
                         ? components[0]
                         : EncodeCompositeIndexValue(components));
      if (missing || current != value_encoded) report->stale_entries++;
    }
    cursor = rows.back().row + '\x01';
  }

  // Direction 2: every base row with the indexed column(s) has its entry.
  cursor.clear();
  for (;;) {
    std::vector<ScannedRow> rows;
    DIFFINDEX_RETURN_NOT_OK(client_->ScanRows(base_table, cursor, "",
                                              kMaxTimestamp, kScanBatch,
                                              &rows));
    if (rows.empty()) break;
    for (const ScannedRow& row : rows) {
      report->rows_scanned++;
      std::vector<std::string> components;
      bool absent = false;
      for (const auto& column : columns) {
        const RowCell* found = nullptr;
        for (const RowCell& cell : row.cells) {
          if (cell.column == column) {
            found = &cell;
            break;
          }
        }
        if (found == nullptr) {
          absent = true;
          break;
        }
        std::string component = found->value;
        if (column == index.column &&
            !IndexComponentFromCell(index, found->value, &component).ok()) {
          absent = true;
          break;
        }
        components.push_back(std::move(component));
      }
      if (absent) continue;  // nothing to index for this row
      const std::string value_encoded =
          components.size() == 1 ? components[0]
                                 : EncodeCompositeIndexValue(components);
      const std::string index_row = EncodeIndexRow(value_encoded, row.row);
      GetRowResponse entry;
      DIFFINDEX_RETURN_NOT_OK(client_->GetRow(index.index_table, index_row,
                                              kMaxTimestamp, &entry));
      if (!entry.found) report->missing_entries++;
    }
    cursor = rows.back().row + '\x01';
  }
  return Status::OK();
}

Status IndexBackfill::Cleanse(const std::string& base_table,
                              const std::string& index_name,
                              CleanseReport* report) {
  *report = CleanseReport{};
  IndexDescriptor index;
  DIFFINDEX_RETURN_NOT_OK(FindIndex(base_table, index_name, &index));

  std::vector<std::string> columns;
  columns.push_back(index.column);
  for (const auto& extra : index.extra_columns) columns.push_back(extra);

  std::string cursor;
  for (;;) {
    std::vector<ScannedRow> rows;
    DIFFINDEX_RETURN_NOT_OK(client_->ScanRows(index.index_table, cursor, "",
                                              kMaxTimestamp, kScanBatch,
                                              &rows));
    if (rows.empty()) return Status::OK();

    for (const ScannedRow& entry : rows) {
      report->entries_scanned++;
      std::string value_encoded, base_row;
      if (!DecodeIndexRow(entry.row, &value_encoded, &base_row)) continue;
      const Timestamp entry_ts =
          entry.cells.empty() ? 0 : entry.cells[0].ts;

      std::vector<std::string> components;
      bool missing = false;
      for (const auto& column : columns) {
        std::string value;
        if (stats_ != nullptr) stats_->AddBaseRead();
        Status s = client_->GetCell(base_table, base_row, column,
                                    kMaxTimestamp, &value);
        if (s.ok() && column == index.column) {
          std::string component;
          s = IndexComponentFromCell(index, value, &component);
          value = std::move(component);
        }
        if (s.IsNotFound()) {
          missing = true;
          break;
        }
        DIFFINDEX_RETURN_NOT_OK(s);
        components.push_back(std::move(value));
      }
      std::string current;
      if (!missing) {
        current = components.size() == 1
                      ? components[0]
                      : EncodeCompositeIndexValue(components);
      }
      if (!missing && current == value_encoded) continue;  // up to date

      if (stats_ != nullptr) stats_->AddIndexPut();
      DIFFINDEX_RETURN_NOT_OK(client_->Put(index.index_table, entry.row,
                                           {Cell{"", "", true}}, entry_ts));
      report->stale_removed++;
    }
    cursor = rows.back().row + '\x01';
  }
}

}  // namespace diffindex
