#include "core/query.h"

#include <algorithm>

#include "query/engine.h"

namespace diffindex {

QueryEngine::QueryEngine(DiffIndexClient* client)
    : client_(client), read_engine_(std::make_unique<ReadEngine>(client)) {}

QueryEngine::~QueryEngine() = default;

namespace {

// Smallest byte string strictly greater than `v` in prefix order: append
// 0x00 (encoded-value order is plain byte order).
std::string NextKey(const std::string& v) {
  std::string next = v;
  next.push_back('\0');
  return next;
}

}  // namespace

Status QueryEngine::Plan(const Query& query, QueryPlan* plan) {
  *plan = QueryPlan{};
  if (query.table.empty()) {
    return Status::InvalidArgument("query: no table");
  }
  CatalogSnapshot catalog = client_->raw_client()->catalog();
  const TableDescriptor* table = catalog.GetTable(query.table);
  if (table == nullptr) {
    return Status::NotFound("no such table: " + query.table);
  }

  // Pass 1: an equality predicate on an indexed column wins (most
  // selective access path).
  for (const IndexDescriptor& index : table->indexes) {
    // Planning only targets plain single-column indexes; composite and
    // dense-field indexes are queried through the index API directly.
    if (!index.extra_columns.empty() || !index.dense_field.empty()) {
      continue;
    }
    for (const Predicate& predicate : query.predicates) {
      if (predicate.column != index.column ||
          predicate.op != PredicateOp::kEq) {
        continue;
      }
      plan->kind = PlanKind::kIndexExact;
      plan->index_name = index.name;
      plan->exact_value = predicate.value_encoded;
      for (const Predicate& other : query.predicates) {
        if (&other != &predicate) plan->residual.push_back(other);
      }
      plan->explanation = "INDEX EXACT " + index.name + " (" +
                          index.column + " = ...), " +
                          std::to_string(plan->residual.size()) +
                          " residual predicate(s)";
      return Status::OK();
    }
  }

  // Pass 2: range predicates on an indexed column.
  for (const IndexDescriptor& index : table->indexes) {
    if (!index.extra_columns.empty() || !index.dense_field.empty()) {
      continue;
    }
    std::string start, end;
    bool bounded = false;
    std::vector<const Predicate*> consumed;
    for (const Predicate& predicate : query.predicates) {
      if (predicate.column != index.column) continue;
      switch (predicate.op) {
        case PredicateOp::kGe:
          if (start.empty() || predicate.value_encoded > start) {
            start = predicate.value_encoded;
          }
          break;
        case PredicateOp::kGt:
          if (start.empty() || NextKey(predicate.value_encoded) > start) {
            start = NextKey(predicate.value_encoded);
          }
          break;
        case PredicateOp::kLt:
          if (end.empty() || predicate.value_encoded < end) {
            end = predicate.value_encoded;
          }
          break;
        case PredicateOp::kLe:
          if (end.empty() || NextKey(predicate.value_encoded) < end) {
            end = NextKey(predicate.value_encoded);
          }
          break;
        case PredicateOp::kEq:
          continue;  // handled in pass 1
      }
      bounded = true;
      consumed.push_back(&predicate);
    }
    if (!bounded) continue;
    plan->kind = PlanKind::kIndexRange;
    plan->index_name = index.name;
    plan->range_start = start;
    plan->range_end = end;
    for (const Predicate& other : query.predicates) {
      if (std::find(consumed.begin(), consumed.end(), &other) ==
          consumed.end()) {
        plan->residual.push_back(other);
      }
    }
    plan->explanation = "INDEX RANGE " + index.name + " (" + index.column +
                        " in [" + (start.empty() ? "-inf" : "...") + ", " +
                        (end.empty() ? "+inf" : "...") + ")), " +
                        std::to_string(plan->residual.size()) +
                        " residual predicate(s)";
    return Status::OK();
  }

  // Fallback: parallel table scan with every predicate residual.
  plan->kind = PlanKind::kFullScan;
  plan->residual = query.predicates;
  plan->explanation = "FULL SCAN " + query.table + ", " +
                      std::to_string(plan->residual.size()) +
                      " residual predicate(s)";
  return Status::OK();
}

bool QueryEngine::RowMatches(const ScannedRow& row,
                             const std::vector<Predicate>& predicates) {
  for (const Predicate& predicate : predicates) {
    const RowCell* cell = nullptr;
    for (const RowCell& candidate : row.cells) {
      if (candidate.column == predicate.column) {
        cell = &candidate;
        break;
      }
    }
    if (cell == nullptr) return false;
    const int cmp = Slice(cell->value).compare(predicate.value_encoded);
    bool ok = false;
    switch (predicate.op) {
      case PredicateOp::kEq:
        ok = cmp == 0;
        break;
      case PredicateOp::kLt:
        ok = cmp < 0;
        break;
      case PredicateOp::kLe:
        ok = cmp <= 0;
        break;
      case PredicateOp::kGt:
        ok = cmp > 0;
        break;
      case PredicateOp::kGe:
        ok = cmp >= 0;
        break;
    }
    if (!ok) return false;
  }
  return true;
}

void QueryEngine::Project(const std::vector<std::string>& projection,
                          std::vector<ScannedRow>* rows) {
  if (projection.empty()) return;
  for (ScannedRow& row : *rows) {
    std::vector<RowCell> kept;
    for (RowCell& cell : row.cells) {
      if (std::find(projection.begin(), projection.end(), cell.column) !=
          projection.end()) {
        kept.push_back(std::move(cell));
      }
    }
    row.cells = std::move(kept);
  }
}

Status QueryEngine::FetchByHits(const Query& query,
                                const std::vector<IndexHit>& hits,
                                std::vector<ScannedRow>* rows) {
  for (const IndexHit& hit : hits) {
    GetRowResponse resp;
    DIFFINDEX_RETURN_NOT_OK(client_->GetRow(query.table, hit.base_row,
                                            &resp));
    if (!resp.found) continue;  // row vanished since the index read
    ScannedRow row;
    row.row = hit.base_row;
    row.cells = std::move(resp.cells);
    rows->push_back(std::move(row));
  }
  return Status::OK();
}

Status QueryEngine::Execute(const Query& query,
                            std::vector<ScannedRow>* rows) {
  rows->clear();
  QueryPlan plan;
  DIFFINDEX_RETURN_NOT_OK(Plan(query, &plan));

  std::vector<ScannedRow> fetched;
  switch (plan.kind) {
    case PlanKind::kIndexExact: {
      std::vector<IndexHit> hits;
      DIFFINDEX_RETURN_NOT_OK(client_->GetByIndex(
          query.table, plan.index_name, plan.exact_value, &hits));
      DIFFINDEX_RETURN_NOT_OK(FetchByHits(query, hits, &fetched));
      break;
    }
    case PlanKind::kIndexRange: {
      // Scatter-gather scan (query/engine.h): one leg per index region,
      // rows come back already fetched — straight from the index entries
      // when the projection is covered. The engine only sees the
      // projection when no residual predicate needs other columns.
      ScanSpec spec;
      spec.table = query.table;
      spec.index_name = plan.index_name;
      spec.value_lo_encoded = plan.range_start;
      spec.value_hi_encoded = plan.range_end;
      if (plan.residual.empty()) spec.projection = query.projection;
      DIFFINDEX_RETURN_NOT_OK(
          read_engine_->ScanByIndex(spec, ScanOptions(), &fetched));
      break;
    }
    case PlanKind::kFullScan: {
      DIFFINDEX_RETURN_NOT_OK(client_->raw_client()->ScanRows(
          query.table, "", "", kMaxTimestamp, 0, &fetched));
      break;
    }
  }

  for (ScannedRow& row : fetched) {
    if (!RowMatches(row, plan.residual)) continue;
    rows->push_back(std::move(row));
    if (query.limit != 0 && rows->size() >= query.limit) break;
  }
  Project(query.projection, rows);
  return Status::OK();
}

Status QueryEngine::Explain(const Query& query, std::string* text) {
  QueryPlan plan;
  DIFFINDEX_RETURN_NOT_OK(Plan(query, &plan));
  *text = plan.explanation;
  return Status::OK();
}

}  // namespace diffindex
