#include "core/diff_index_client.h"

#include "core/index_codec.h"

namespace diffindex {

DiffIndexClient::DiffIndexClient(std::shared_ptr<Client> client,
                                 OpStats* stats,
                                 const SessionOptions& session_options)
    : client_(std::move(client)),
      stats_(stats),
      reader_(client_, stats),
      sessions_(session_options),
      metrics_(client_->metrics()),
      traces_(client_->traces()) {}

std::string DiffIndexClient::SchemeTag(const std::string& table) {
  {
    MutexLock lock(scheme_mu_);
    auto it = scheme_by_table_.find(table);
    if (it != scheme_by_table_.end()) return it->second;
  }
  // One catalog lookup per table outside the lock (it may RPC the master).
  CatalogSnapshot catalog = client_->catalog();
  const TableDescriptor* desc = catalog.GetTable(table);
  if (desc == nullptr) return "";  // not cached: the table may appear later
  std::string tag;
  if (!desc->indexes.empty()) tag = IndexSchemeName(desc->indexes[0].scheme);
  MutexLock lock(scheme_mu_);
  return scheme_by_table_.emplace(table, std::move(tag)).first->second;
}

obs::TraceContext DiffIndexClient::OpContext(const char* op,
                                             const std::string& table) {
  std::string scheme = SchemeTag(table);
  const obs::TraceContext& ambient = obs::CurrentTraceContext();
  if (ambient.active()) {
    obs::TraceContext child = ambient.Child();
    if (child.scheme.empty()) child.scheme = std::move(scheme);
    return child;
  }
  return obs::TraceContext::NewRoot(op, std::move(scheme));
}

Status DiffIndexClient::Put(const std::string& table, const std::string& row,
                            std::vector<Cell> cells) {
  obs::ScopedTraceContext scope(OpContext("put", table));
  obs::SpanTimer span(metrics_, traces_, "client.put");
  if (stats_ != nullptr) stats_->AddBasePut();
  return client_->Put(table, row, std::move(cells));
}

Status DiffIndexClient::PutColumn(const std::string& table,
                                  const std::string& row,
                                  const std::string& column,
                                  const std::string& value) {
  return Put(table, row, {Cell{column, value, false}});
}

Status DiffIndexClient::DeleteColumns(
    const std::string& table, const std::string& row,
    const std::vector<std::string>& columns) {
  obs::ScopedTraceContext scope(OpContext("delete_columns", table));
  obs::SpanTimer span(metrics_, traces_, "client.delete_columns");
  if (stats_ != nullptr) stats_->AddBasePut();
  return client_->DeleteColumns(table, row, columns);
}

Status DiffIndexClient::Get(const std::string& table, const std::string& row,
                            const std::string& column, std::string* value) {
  obs::ScopedTraceContext scope(OpContext("get", table));
  obs::SpanTimer span(metrics_, traces_, "client.get");
  if (stats_ != nullptr) stats_->AddBaseRead();
  return client_->GetCell(table, row, column, kMaxTimestamp, value);
}

Status DiffIndexClient::GetRow(const std::string& table,
                               const std::string& row,
                               GetRowResponse* resp) {
  obs::ScopedTraceContext scope(OpContext("get_row", table));
  obs::SpanTimer span(metrics_, traces_, "client.get_row");
  if (stats_ != nullptr) stats_->AddBaseRead();
  return client_->GetRow(table, row, kMaxTimestamp, resp);
}

Status DiffIndexClient::GetByIndex(const std::string& table,
                                   const std::string& index_name,
                                   const std::string& value_encoded,
                                   std::vector<IndexHit>* hits) {
  obs::ScopedTraceContext scope(OpContext("get_by_index", table));
  obs::SpanTimer span(metrics_, traces_, "client.get_by_index");
  return reader_.GetByIndex(table, index_name, value_encoded, hits);
}

Status DiffIndexClient::RangeByIndex(const std::string& table,
                                     const std::string& index_name,
                                     const std::string& value_lo_encoded,
                                     const std::string& value_hi_encoded,
                                     uint32_t limit,
                                     std::vector<IndexHit>* hits) {
  obs::ScopedTraceContext scope(OpContext("range_by_index", table));
  obs::SpanTimer span(metrics_, traces_, "client.range_by_index");
  return reader_.RangeByIndex(table, index_name, value_lo_encoded,
                              value_hi_encoded, limit, hits);
}

Status DiffIndexClient::QueryByIndex(const std::string& table,
                                     const std::string& index_name,
                                     const std::string& value_encoded,
                                     std::vector<ScannedRow>* rows) {
  obs::ScopedTraceContext scope(OpContext("query_by_index", table));
  obs::SpanTimer span(metrics_, traces_, "client.query_by_index");
  rows->clear();
  std::vector<IndexHit> hits;
  DIFFINDEX_RETURN_NOT_OK(
      GetByIndex(table, index_name, value_encoded, &hits));
  for (const IndexHit& hit : hits) {
    GetRowResponse resp;
    if (stats_ != nullptr) stats_->AddBaseRead();
    DIFFINDEX_RETURN_NOT_OK(
        client_->GetRow(table, hit.base_row, kMaxTimestamp, &resp));
    if (!resp.found) continue;  // row deleted since the index read
    ScannedRow row;
    row.row = hit.base_row;
    row.cells = std::move(resp.cells);
    rows->push_back(std::move(row));
  }
  return Status::OK();
}

SessionId DiffIndexClient::GetSession() { return sessions_.CreateSession(); }

void DiffIndexClient::EndSession(SessionId session) {
  sessions_.EndSession(session);
}

Status DiffIndexClient::SessionPut(SessionId session, const std::string& table,
                                   const std::string& row,
                                   std::vector<Cell> cells) {
  // The server returns the previous value of each written cell plus the
  // assigned timestamp; the client library mirrors the server-side index
  // mutations into the session's private tables (Section 5.2).
  obs::ScopedTraceContext scope(OpContext("session_put", table));
  obs::SpanTimer span(metrics_, traces_, "client.session_put");
  if (stats_ != nullptr) stats_->AddBasePut();
  PutResponse resp;
  DIFFINDEX_RETURN_NOT_OK(client_->Put(table, row, cells, /*ts=*/0,
                                       /*return_old_values=*/true, &resp));
  const Timestamp ts = resp.assigned_ts;

  CatalogSnapshot catalog = client_->catalog();
  const TableDescriptor* desc = catalog.GetTable(table);
  if (desc == nullptr) return Status::OK();

  for (const IndexDescriptor& index : desc->indexes) {
    // Private tracking needs every component value client-side, so it is
    // maintained for indexes fully determined by this put (all single-
    // column indexes qualify).
    const Cell* new_cell = nullptr;
    for (const Cell& cell : cells) {
      if (cell.column == index.column) {
        new_cell = &cell;
        break;
      }
    }
    if (new_cell == nullptr || !index.extra_columns.empty()) continue;

    // Same logic as the server: delete-marker for the superseded entry at
    // ts - δ, new entry at ts.
    const OldCellValue* old = nullptr;
    for (const OldCellValue& candidate : resp.old_values) {
      if (candidate.column == index.column) {
        old = &candidate;
        break;
      }
    }
    if (old != nullptr && old->found) {
      std::string old_component;
      if (IndexComponentFromCell(index, old->value, &old_component).ok()) {
        const std::string old_row = EncodeIndexRow(old_component, row);
        DIFFINDEX_RETURN_NOT_OK(sessions_.RecordEntry(
            session, index.index_table, old_row, ts - kDelta,
            /*is_delete=*/true));
      }
    }
    if (!new_cell->is_delete) {
      std::string new_component;
      if (IndexComponentFromCell(index, new_cell->value, &new_component)
              .ok()) {
        const std::string new_row = EncodeIndexRow(new_component, row);
        DIFFINDEX_RETURN_NOT_OK(sessions_.RecordEntry(
            session, index.index_table, new_row, ts, /*is_delete=*/false));
      }
    }
  }
  return Status::OK();
}

Status DiffIndexClient::SessionGetByIndex(SessionId session,
                                          const std::string& table,
                                          const std::string& index_name,
                                          const std::string& value_encoded,
                                          std::vector<IndexHit>* hits) {
  obs::ScopedTraceContext scope(OpContext("session_get_by_index", table));
  obs::SpanTimer span(metrics_, traces_, "client.session_get_by_index");
  IndexDescriptor index;
  DIFFINDEX_RETURN_NOT_OK(reader_.FindIndex(table, index_name, &index));
  DIFFINDEX_RETURN_NOT_OK(
      reader_.GetByIndex(table, index_name, value_encoded, hits));
  // Merge the session's private view over the server results.
  return sessions_.MergeHits(session, index.index_table,
                             IndexScanStartForValue(value_encoded),
                             IndexScanEndForValue(value_encoded), hits,
                             /*degraded=*/nullptr);
}

Status DiffIndexClient::SessionRangeByIndex(
    SessionId session, const std::string& table,
    const std::string& index_name, const std::string& value_lo_encoded,
    const std::string& value_hi_encoded, std::vector<IndexHit>* hits) {
  obs::ScopedTraceContext scope(OpContext("session_range_by_index", table));
  obs::SpanTimer span(metrics_, traces_, "client.session_range_by_index");
  IndexDescriptor index;
  DIFFINDEX_RETURN_NOT_OK(reader_.FindIndex(table, index_name, &index));
  // No limit: a server-side limit would make the private-entry merge
  // ambiguous about what the cutoff hides.
  DIFFINDEX_RETURN_NOT_OK(reader_.RangeByIndex(
      table, index_name, value_lo_encoded, value_hi_encoded, 0, hits));
  return sessions_.MergeHits(session, index.index_table,
                             IndexRangeStart(value_lo_encoded),
                             IndexRangeEnd(value_hi_encoded), hits,
                             /*degraded=*/nullptr);
}

}  // namespace diffindex
