#include "core/index_read.h"

#include "core/index_codec.h"
#include "obs/trace.h"

namespace diffindex {

Status IndexReader::FindIndex(const std::string& base_table,
                              const std::string& index_name,
                              IndexDescriptor* index) {
  CatalogSnapshot catalog = client_->catalog();
  const TableDescriptor* table = catalog.GetTable(base_table);
  if (table == nullptr) return Status::NotFound("no such table: " + base_table);
  for (const auto& candidate : table->indexes) {
    if (candidate.name == index_name) {
      *index = candidate;
      return Status::OK();
    }
  }
  return Status::NotFound("no such index: " + index_name + " on " +
                          base_table);
}

Status IndexReader::ScanIndex(const IndexDescriptor& index,
                              const std::string& start,
                              const std::string& end, uint32_t limit,
                              std::vector<IndexHit>* hits) {
  obs::SpanTimer span(client_->metrics(), client_->traces(), "index.scan");
  if (client_->metrics() != nullptr) {
    client_->metrics()->GetCounter("index.read")->Add();
  }
  if (stats_ != nullptr) stats_->AddIndexRead();
  std::vector<ScannedRow> rows;
  DIFFINDEX_RETURN_NOT_OK(client_->ScanRows(index.index_table, start, end,
                                            kMaxTimestamp, limit, &rows));
  hits->reserve(hits->size() + rows.size());
  for (const auto& row : rows) {
    IndexHit hit;
    if (!DecodeIndexRow(row.row, &hit.value_encoded, &hit.base_row)) {
      return Status::Corruption("malformed index row in " +
                                index.index_table);
    }
    // Key-only entries carry one anonymous cell whose ts is the entry ts.
    hit.ts = row.cells.empty() ? 0 : row.cells[0].ts;
    hits->push_back(std::move(hit));
  }
  return Status::OK();
}

Status IndexReader::BroadcastLocalScan(const IndexDescriptor& index,
                                       const std::string& base_table,
                                       const std::string& start,
                                       const std::string& end,
                                       uint32_t limit,
                                       std::vector<IndexHit>* hits) {
  obs::SpanTimer span(client_->metrics(), client_->traces(),
                      "index.broadcast_scan");
  if (client_->metrics() != nullptr) {
    client_->metrics()->GetCounter("index.read")->Add();
  }
  if (stats_ != nullptr) stats_->AddIndexRead();
  std::vector<RawEntry> entries;
  DIFFINDEX_RETURN_NOT_OK(client_->ScanLocalIndex(
      base_table, index.name, start, end, kMaxTimestamp, limit, &entries));
  hits->reserve(entries.size());
  for (const auto& entry : entries) {
    IndexHit hit;
    if (!DecodeIndexRow(entry.key, &hit.value_encoded, &hit.base_row)) {
      return Status::Corruption("malformed local index row");
    }
    hit.ts = entry.ts;
    hits->push_back(std::move(hit));
  }
  // Per-region results arrive region by region; normalize the order.
  std::sort(hits->begin(), hits->end(),
            [](const IndexHit& a, const IndexHit& b) {
              if (a.value_encoded != b.value_encoded) {
                return a.value_encoded < b.value_encoded;
              }
              return a.base_row < b.base_row;
            });
  return Status::OK();
}

Status IndexReader::RepairHits(const std::string& base_table,
                               const IndexDescriptor& index,
                               std::vector<IndexHit>* hits) {
  obs::SpanTimer span(client_->metrics(), client_->traces(), "index.repair");
  obs::Counter* checked = nullptr;
  obs::Counter* repaired = nullptr;
  if (client_->metrics() != nullptr) {
    checked = client_->metrics()->GetCounter("index.repair.checked");
    repaired = client_->metrics()->GetCounter("index.repair.deleted");
  }
  std::vector<IndexHit> verified;
  verified.reserve(hits->size());
  for (IndexHit& hit : *hits) {
    if (checked != nullptr) checked->Add();
    // SR2: read the base table and get the newest value of k.
    std::vector<std::string> columns;
    columns.push_back(index.column);
    for (const auto& extra : index.extra_columns) columns.push_back(extra);

    std::vector<std::string> components;
    bool missing = false;
    for (const auto& column : columns) {
      std::string value;
      if (stats_ != nullptr) stats_->AddBaseRead();
      Status s = client_->GetCell(base_table, hit.base_row, column,
                                  kMaxTimestamp, &value);
      if (s.ok() && column == index.column) {
        std::string component;
        s = IndexComponentFromCell(index, value, &component);
        value = std::move(component);
      }
      if (s.IsNotFound()) {
        missing = true;
        break;
      }
      DIFFINDEX_RETURN_NOT_OK(s);
      components.push_back(std::move(value));
    }

    std::string current_encoded;
    if (!missing) {
      current_encoded = components.size() == 1
                            ? components[0]
                            : EncodeCompositeIndexValue(components);
    }

    if (!missing && current_encoded == hit.value_encoded) {
      // v_index == v_base: up-to-date entry.
      verified.push_back(std::move(hit));
      continue;
    }
    // Stale: delete <v_index ⊕ k, ts> from the index table. The tombstone
    // at the entry's own ts cannot mask any newer entry.
    if (repaired != nullptr) repaired->Add();
    if (stats_ != nullptr) stats_->AddIndexPut();
    const std::string index_row =
        EncodeIndexRow(hit.value_encoded, hit.base_row);
    Status s = client_->Put(index.index_table, index_row,
                            {Cell{"", "", /*is_delete=*/true}}, hit.ts);
    if (!s.ok()) {
      // Repair is best-effort; the entry stays stale and will be repaired
      // by a later read.
      continue;
    }
  }
  *hits = std::move(verified);
  return Status::OK();
}

Status IndexReader::GetByIndex(const std::string& base_table,
                               const std::string& index_name,
                               const std::string& value_encoded,
                               std::vector<IndexHit>* hits) {
  hits->clear();
  IndexDescriptor index;
  DIFFINDEX_RETURN_NOT_OK(FindIndex(base_table, index_name, &index));
  if (index.is_local) {
    return BroadcastLocalScan(index, base_table,
                              IndexScanStartForValue(value_encoded),
                              IndexScanEndForValue(value_encoded), 0, hits);
  }
  DIFFINDEX_RETURN_NOT_OK(ScanIndex(index,
                                    IndexScanStartForValue(value_encoded),
                                    IndexScanEndForValue(value_encoded), 0,
                                    hits));
  if (index.scheme == IndexScheme::kSyncInsert) {
    DIFFINDEX_RETURN_NOT_OK(RepairHits(base_table, index, hits));
  }
  return Status::OK();
}

Status IndexReader::RangeByIndex(const std::string& base_table,
                                 const std::string& index_name,
                                 const std::string& value_lo_encoded,
                                 const std::string& value_hi_encoded,
                                 uint32_t limit,
                                 std::vector<IndexHit>* hits) {
  hits->clear();
  IndexDescriptor index;
  DIFFINDEX_RETURN_NOT_OK(FindIndex(base_table, index_name, &index));
  if (index.is_local) {
    return BroadcastLocalScan(index, base_table,
                              IndexRangeStart(value_lo_encoded),
                              IndexRangeEnd(value_hi_encoded), limit, hits);
  }
  DIFFINDEX_RETURN_NOT_OK(ScanIndex(index, IndexRangeStart(value_lo_encoded),
                                    IndexRangeEnd(value_hi_encoded), limit,
                                    hits));
  if (index.scheme == IndexScheme::kSyncInsert) {
    DIFFINDEX_RETURN_NOT_OK(RepairHits(base_table, index, hits));
  }
  return Status::OK();
}

}  // namespace diffindex
