// DiffIndexClient: the public client API of the library — base-table
// CRUD, index reads (getByIndex / range queries), and the session-
// consistent variants of Section 5.2:
//
//   session s = get_session()
//   put(s, table, key, colname, colvalue)
//   getFromIndex(s, table, colname, colvalue)
//   end_session(s)
//
// Exact-match and range lookups dispatch per the index's scheme: plain
// index scan for sync-full/async, double-check-and-clean (Algorithm 2)
// for sync-insert, session-cache merge for async-session reads made
// through a session.

#ifndef DIFFINDEX_CORE_DIFF_INDEX_CLIENT_H_
#define DIFFINDEX_CORE_DIFF_INDEX_CLIENT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/client.h"
#include "core/index_read.h"
#include "core/session.h"
#include "obs/trace.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace diffindex {

class DiffIndexClient {
 public:
  // stats may be null.
  DiffIndexClient(std::shared_ptr<Client> client, OpStats* stats = nullptr,
                  const SessionOptions& session_options = SessionOptions());

  // ---- Base table operations ----

  Status Put(const std::string& table, const std::string& row,
             std::vector<Cell> cells);
  Status PutColumn(const std::string& table, const std::string& row,
                   const std::string& column, const std::string& value);
  Status DeleteColumns(const std::string& table, const std::string& row,
                       const std::vector<std::string>& columns);
  Status Get(const std::string& table, const std::string& row,
             const std::string& column, std::string* value);
  Status GetRow(const std::string& table, const std::string& row,
                GetRowResponse* resp);

  // ---- Index reads ----

  // Base rowkeys whose indexed column equals value_encoded (use the
  // index_codec Encode*IndexValue helpers for typed columns).
  Status GetByIndex(const std::string& table, const std::string& index_name,
                    const std::string& value_encoded,
                    std::vector<IndexHit>* hits);

  // Rowkeys with indexed value in [lo, hi); limit 0 = unlimited.
  Status RangeByIndex(const std::string& table, const std::string& index_name,
                      const std::string& value_lo_encoded,
                      const std::string& value_hi_encoded, uint32_t limit,
                      std::vector<IndexHit>* hits);

  // GetByIndex + fetch of the matching base rows.
  Status QueryByIndex(const std::string& table, const std::string& index_name,
                      const std::string& value_encoded,
                      std::vector<ScannedRow>* rows);

  // ---- Session consistency ----

  SessionId GetSession();
  void EndSession(SessionId session);

  // Put whose effects this session is guaranteed to see in its own
  // subsequent index reads.
  Status SessionPut(SessionId session, const std::string& table,
                    const std::string& row, std::vector<Cell> cells);

  // Index read that merges this session's private writes.
  Status SessionGetByIndex(SessionId session, const std::string& table,
                           const std::string& index_name,
                           const std::string& value_encoded,
                           std::vector<IndexHit>* hits);

  // Session-consistent range query over [lo, hi) of encoded values.
  Status SessionRangeByIndex(SessionId session, const std::string& table,
                             const std::string& index_name,
                             const std::string& value_lo_encoded,
                             const std::string& value_hi_encoded,
                             std::vector<IndexHit>* hits);

  // ---- Accessors ----

  Client* raw_client() { return client_.get(); }
  IndexReader* reader() { return &reader_; }
  SessionManager* sessions() { return &sessions_; }
  OpStats* stats() { return stats_; }

 private:
  // Scheme tag for span names ("sync-full", ...), from the table's first
  // index; cached per table (one catalog lookup, not one per op). Empty
  // when the table is unknown or unindexed.
  std::string SchemeTag(const std::string& table);

  // Context for one client-level op: a child of the ambient context when
  // one is active (e.g. inside a StalenessProbe cycle), else a fresh root.
  obs::TraceContext OpContext(const char* op, const std::string& table);

  std::shared_ptr<Client> client_;
  OpStats* const stats_;
  IndexReader reader_;
  SessionManager sessions_;

  // Observability sinks inherited from the underlying Client (may be
  // null).
  obs::MetricsRegistry* const metrics_;
  obs::TraceCollector* const traces_;

  Mutex scheme_mu_;
  std::map<std::string, std::string> scheme_by_table_ GUARDED_BY(scheme_mu_);
};

}  // namespace diffindex

#endif  // DIFFINDEX_CORE_DIFF_INDEX_CLIENT_H_
