#include "core/advisor.h"

namespace diffindex {

SchemeAdvisor::Recommendation SchemeAdvisor::Recommend(
    const IndexWorkloadProfile& profile, const AdvisorOptions& options) {
  Recommendation result;

  // Principle (5): read-your-write dominates everything else.
  if (profile.requires_read_your_writes) {
    result.scheme = IndexScheme::kAsyncSession;
    result.reason =
        "read-your-write semantics required: async-session gives session "
        "consistency at async update cost";
    result.cleanse_after_switch_from_insert = true;
    return result;
  }

  // Principle (4): no consistency requirement -> cheapest updates.
  if (!profile.requires_consistency) {
    result.scheme = IndexScheme::kAsyncSimple;
    result.reason =
        "consistency not a concern: async-simple acknowledges after "
        "base put + enqueue";
    result.cleanse_after_switch_from_insert = true;
    return result;
  }

  // Principles (1)-(3): consistency needed; choose by which latency the
  // workload makes critical.
  const uint64_t total = profile.updates + profile.reads;
  const double update_fraction =
      total == 0 ? 0.5
                 : static_cast<double>(profile.updates) /
                       static_cast<double>(total);

  const bool insert_reads_affordable =
      profile.avg_rows_per_read <= options.max_rows_per_read_for_insert;

  if (update_fraction >= options.update_critical_ratio &&
      insert_reads_affordable) {
    result.scheme = IndexScheme::kSyncInsert;
    result.reason =
        "update latency critical (update fraction " +
        std::to_string(update_fraction) +
        "): sync-insert skips the disk-bound base read on every update "
        "and repairs lazily on the rare reads";
    return result;
  }

  result.scheme = IndexScheme::kSyncFull;
  if (update_fraction >= options.update_critical_ratio) {
    result.reason =
        "write-heavy but reads return ~" +
        std::to_string(profile.avg_rows_per_read) +
        " rows each: sync-insert's K base-read double-checks would "
        "dominate, so sync-full keeps reads index-only";
  } else {
    result.reason =
        "read latency critical (update fraction " +
        std::to_string(update_fraction) +
        "): sync-full keeps the index exact so reads touch only the "
        "small index table";
  }
  result.cleanse_after_switch_from_insert = true;
  return result;
}

IndexScheme SchemeAdvisor::RecommendScheme(uint64_t updates, uint64_t reads,
                                           bool requires_consistency,
                                           bool requires_read_your_writes) {
  IndexWorkloadProfile profile;
  profile.updates = updates;
  profile.reads = reads;
  profile.requires_consistency = requires_consistency;
  profile.requires_read_your_writes = requires_read_your_writes;
  return Recommend(profile).scheme;
}

}  // namespace diffindex
