// Session consistency (Section 5.2): the client library tracks, per
// session, the index entries and delete markers its own writes *should*
// produce, in private in-memory tables. Session-consistent index reads
// merge the server's (possibly stale) results with the private state, so
// a session always reads its own writes even under async-session.
//
// Sessions expire after an idle limit, and a per-session memory cap
// auto-disables merging (degrading the session to plain async-simple
// semantics) instead of running out of memory — both behaviors described
// in the paper.

#ifndef DIFFINDEX_CORE_SESSION_H_
#define DIFFINDEX_CORE_SESSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/index_read.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/timestamp_oracle.h"

namespace diffindex {

using SessionId = uint64_t;

struct SessionOptions {
  // Idle expiry (the paper uses 30 minutes; tests shrink it).
  uint64_t idle_limit_micros = 30ull * 60 * 1000 * 1000;
  // Per-session private-table cap; exceeding it disables the session's
  // merging rather than OOM-ing.
  size_t max_memory_bytes = 4 << 20;
};

class SessionManager {
 public:
  explicit SessionManager(const SessionOptions& options = SessionOptions())
      : options_(options) {}

  SessionId CreateSession();
  // Forgets the session and garbage-collects its private tables.
  void EndSession(SessionId id);

  // Records one private index mutation produced by a session write:
  // is_delete marks a delete-marker for a superseded entry.
  // Returns SessionExpired if the session is unknown/expired.
  Status RecordEntry(SessionId id, const std::string& index_table,
                     const std::string& index_row, Timestamp ts,
                     bool is_delete);

  // Merges private state into `hits` for a lookup on [value_lo, value_hi)
  // of `index_table`: removes hits superseded by private delete-markers,
  // adds private entries the server has not caught up with. `degraded` is
  // set if the session overflowed its memory cap (merge skipped).
  Status MergeHits(SessionId id, const std::string& index_table,
                   const std::string& range_start,
                   const std::string& range_end, std::vector<IndexHit>* hits,
                   bool* degraded);

  // Expires idle sessions; returns how many were collected.
  size_t CollectExpired();

  size_t live_sessions() const;
  bool IsLive(SessionId id) const;
  size_t MemoryUsage(SessionId id) const;

 private:
  struct PrivateEntry {
    Timestamp ts = 0;
    bool is_delete = false;
  };
  struct Session {
    uint64_t last_active_micros = 0;
    bool degraded = false;  // memory cap exceeded: merging disabled
    size_t memory_bytes = 0;
    // index_table -> index_row -> newest private mutation
    std::map<std::string, std::map<std::string, PrivateEntry>> tables;
  };

  Status TouchLocked(SessionId id, Session** session) REQUIRES(mu_);

  const SessionOptions options_;
  mutable Mutex mu_;
  std::map<SessionId, Session> sessions_ GUARDED_BY(mu_);
  uint64_t next_id_ GUARDED_BY(mu_) = 1;
};

}  // namespace diffindex

#endif  // DIFFINDEX_CORE_SESSION_H_
