#include "core/op_stats.h"

#include <sstream>

namespace diffindex {

std::string OpStats::Snapshot::ToString() const {
  std::ostringstream out;
  out << "base_put=" << base_put << " base_read=" << base_read
      << " index_put=" << index_put << " index_read=" << index_read
      << " async_base_read=[" << async_base_read << "] async_index_put=["
      << async_index_put << "]";
  return out.str();
}

void OpStats::Bind(obs::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  c_base_put_ = registry->GetCounter("io.base_put");
  c_base_read_ = registry->GetCounter("io.base_read");
  c_index_put_ = registry->GetCounter("io.index_put");
  c_index_read_ = registry->GetCounter("io.index_read");
  c_async_base_read_ = registry->GetCounter("io.async_base_read");
  c_async_index_put_ = registry->GetCounter("io.async_index_put");
}

OpStats::Snapshot OpStats::snapshot() const {
  Snapshot s;
  s.base_put = base_put_.load(std::memory_order_relaxed);
  s.base_read = base_read_.load(std::memory_order_relaxed);
  s.index_put = index_put_.load(std::memory_order_relaxed);
  s.index_read = index_read_.load(std::memory_order_relaxed);
  s.async_base_read = async_base_read_.load(std::memory_order_relaxed);
  s.async_index_put = async_index_put_.load(std::memory_order_relaxed);
  return s;
}

void OpStats::Reset() {
  base_put_.store(0);
  base_read_.store(0);
  index_put_.store(0);
  index_read_.store(0);
  async_base_read_.store(0);
  async_index_put_.store(0);
}

}  // namespace diffindex
