// The Diff-Index coprocessors (Section 7): SyncFullObserver,
// SyncInsertObserver and AsyncObserver, dispatched per index by the
// IndexManager that each region server installs as its maintenance hooks.
//
//   sync-full   (Algorithm 1): SU2 put new index entry @ ts;
//               SU3 read old base value @ ts-δ; SU4 delete old entry @ ts-δ.
//   sync-insert: SU2 only; stale entries are repaired at read time
//               (core/index_read.h).
//   async-*    (Algorithm 3): enqueue to the AUQ; the APS performs
//               BA2 read old @ ts-δ, BA3 delete old @ ts-δ,
//               BA4 put new @ ts (Algorithm 4).
//
// Failed synchronous operations are pushed into the AUQ for retry, so the
// base put still succeeds and the index converges eventually (Section 6.2).
//
// Invariant enforced everywhere: an index entry carries the SAME timestamp
// as the base entry that produced it — the whole concurrency-control and
// recovery story depends on it (Section 4.3).

#ifndef DIFFINDEX_CORE_OBSERVERS_H_
#define DIFFINDEX_CORE_OBSERVERS_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/client.h"
#include "cluster/region_server.h"
#include "core/auq.h"
#include "core/op_stats.h"

namespace diffindex {

class IndexManager final : public IndexMaintenanceHooks {
 public:
  // `server` hosts the base regions (local reads); `internal_client`
  // routes index puts/deletes to the index regions (remote calls). `stats`
  // may be null.
  IndexManager(RegionServer* server, std::shared_ptr<Client> internal_client,
               OpStats* stats, const AuqOptions& auq_options);
  ~IndexManager() override;

  // ---- IndexMaintenanceHooks ----
  Status PostApply(const PutRequest& put, Timestamp ts) override;
  void PreFlush(const std::string& table) override;
  void PostFlush(const std::string& table) override;
  void OnWalReplay(const PutRequest& put, Timestamp ts) override;
  void OnRegionOpened(const std::string& table, uint64_t region_id) override;
  uint64_t QueueDepth() const override;

  AsyncUpdateQueue* auq() { return auq_.get(); }

  // Graceful: drains the AUQ backlog before stopping.
  void Shutdown();
  // Crash semantics: drops the AUQ backlog (see AsyncUpdateQueue::Abandon).
  void Abandon();

 private:
  // Applies one task synchronously (shared by sync-full foreground and the
  // APS backend): read-old, delete-old, put-new per the scheme's needs.
  // `insert_only` limits it to SU2 (sync-insert); `foreground` selects the
  // stats bucket.
  Status ProcessTask(const IndexTask& task, bool insert_only,
                     bool foreground);

  // Resolves the index's component values at `read_ts` (values present in
  // `task.cells` win — they are the just-written ones at task.ts). On OK,
  // `*out` is nullopt iff some component is definitively absent (=> no
  // index entry). A failed base read (node down, injected I/O error, ...)
  // returns its error instead of masquerading as "absent": the caller must
  // retry, or a missed old-entry delete would leave a phantom forever.
  Status ResolveIndexValue(const IndexTask& task, Timestamp read_ts,
                           bool use_task_cells, bool foreground,
                           std::optional<std::string>* out);

  // True if the put touches any component of the index.
  static bool Touches(const IndexDescriptor& index,
                      const std::vector<Cell>& cells);

  Status PutIndexEntry(const std::string& index_table,
                       const std::string& index_row, Timestamp ts,
                       bool foreground);
  Status DeleteIndexEntry(const std::string& index_table,
                          const std::string& index_row, Timestamp ts,
                          bool foreground);

  // Batched APS backend: resolves every task's new/old values, stages the
  // PI/DI operations, and ships them grouped by owning server in one
  // multi-put RPC per server (Client::MultiPutBatch). One status per task;
  // a transport failure fails every task that staged work — the retried
  // delivery is idempotent under the same-timestamp rule.
  void ProcessTaskBatch(const std::vector<IndexTask>& tasks,
                        std::vector<Status>* statuses);
  // Staged (deferred) forms of PutIndexEntry/DeleteIndexEntry: append the
  // index mutation to `ops` instead of shipping it immediately. Same
  // failpoints and stats buckets as the direct forms.
  Status StagePutIndexEntry(const std::string& index_table,
                            const std::string& index_row, Timestamp ts,
                            std::vector<PutRequest>* ops);
  Status StageDeleteIndexEntry(const std::string& index_table,
                               const std::string& index_row, Timestamp ts,
                               std::vector<PutRequest>* ops);

  // Local-index (Section 3.1) maintenance: all operations stay on this
  // server — the old-value read is local and the entry writes go to the
  // region's co-located side tree. Always synchronous.
  Status ProcessLocalTask(const IndexTask& task);

  RegionServer* const server_;
  std::shared_ptr<Client> internal_client_;
  OpStats* const stats_;
  std::unique_ptr<AsyncUpdateQueue> auq_;
};

}  // namespace diffindex

#endif  // DIFFINDEX_CORE_OBSERVERS_H_
