#include "core/auq.h"

#include <algorithm>
#include <chrono>

namespace diffindex {

AsyncUpdateQueue::AsyncUpdateQueue(const AuqOptions& options,
                                   Processor processor)
    : options_(options), processor_(std::move(processor)) {
  if (options_.metrics != nullptr) {
    depth_gauge_ = options_.metrics->GetGauge("auq.depth");
    enqueued_counter_ = options_.metrics->GetCounter("auq.enqueued");
    processed_counter_ = options_.metrics->GetCounter("auq.processed");
    retries_counter_ = options_.metrics->GetCounter("auq.retries");
    task_micros_hist_ = options_.metrics->GetHistogram("auq.task_micros");
    staleness_hist_ = options_.metrics->GetHistogram("auq.staleness_micros");
  }
  workers_.reserve(options_.worker_threads);
  for (int i = 0; i < options_.worker_threads; i++) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

AsyncUpdateQueue::~AsyncUpdateQueue() { Shutdown(); }

bool AsyncUpdateQueue::Enqueue(IndexTask task) {
  std::unique_lock<std::mutex> lock(mu_);
  intake_cv_.wait(lock, [this] {
    if (shutdown_) return true;
    if (paused_ > 0) return false;
    return options_.max_depth == 0 || queue_.size() < options_.max_depth;
  });
  if (shutdown_) return false;
  queue_.push_back(std::move(task));
  work_cv_.notify_one();
  if (enqueued_counter_ != nullptr) enqueued_counter_->Add();
  if (depth_gauge_ != nullptr) depth_gauge_->Add(1);
  return true;
}

void AsyncUpdateQueue::Pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_++;
}

void AsyncUpdateQueue::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (paused_ > 0) paused_--;
  }
  intake_cv_.notify_all();
}

void AsyncUpdateQueue::WaitDrained() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_cv_.wait(lock, [this] {
    return shutdown_ || (queue_.empty() && in_flight_ == 0);
  });
}

void AsyncUpdateQueue::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  intake_cv_.notify_all();
  work_cv_.notify_all();
  drained_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

size_t AsyncUpdateQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() + static_cast<size_t>(in_flight_);
}

uint64_t AsyncUpdateQueue::processed() const {
  return processed_.load(std::memory_order_relaxed);
}

uint64_t AsyncUpdateQueue::retries() const {
  return retries_.load(std::memory_order_relaxed);
}

void AsyncUpdateQueue::WorkerLoop() {
  for (;;) {
    IndexTask task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      in_flight_++;
    }

    if (options_.process_delay_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.process_delay_ms));
    }

    Status s;
    {
      // The task carries the trace of the base put that spawned it, so
      // the APS work appears as a child span of the client's request.
      obs::ScopedTraceContext scope(task.trace.active()
                                        ? task.trace.Child()
                                        : obs::TraceContext());
      obs::SpanTimer span(options_.metrics, options_.traces, "aps.task");
      const uint64_t start = TimestampOracle::NowMicros();
      s = processor_(task);
      if (s.ok() && task_micros_hist_ != nullptr) {
        const uint64_t end = TimestampOracle::NowMicros();
        task_micros_hist_->Add(end > start ? end - start : 0);
      }
    }

    if (s.ok()) {
      processed_.fetch_add(1, std::memory_order_relaxed);
      if (processed_counter_ != nullptr) processed_counter_->Add();
      if (depth_gauge_ != nullptr) depth_gauge_->Sub(1);
      const uint64_t count =
          task_counter_.fetch_add(1, std::memory_order_relaxed);
      if (options_.staleness_sample_every > 0 &&
          count % static_cast<uint64_t>(options_.staleness_sample_every) ==
              0) {
        // T2 - T1: base-entry timestamp vs. moment the index update
        // completed, both in microseconds on the same clock.
        const Timestamp now = TimestampOracle::NowMicros();
        if (now > task.ts) {
          staleness_.Add(now - task.ts);
          if (staleness_hist_ != nullptr) staleness_hist_->Add(now - task.ts);
        }
      }
      std::lock_guard<std::mutex> lock(mu_);
      in_flight_--;
      if (queue_.empty() && in_flight_ == 0) drained_cv_.notify_all();
      intake_cv_.notify_one();  // capacity freed
      continue;
    }

    // Failure: retry with backoff until eventual success (the queue keeps
    // the task in_flight through the backoff so WaitDrained stays honest).
    retries_.fetch_add(1, std::memory_order_relaxed);
    if (retries_counter_ != nullptr) retries_counter_->Add();
    task.attempts++;
    const int backoff_ms =
        std::min(task.attempts, 8) * options_.retry_backoff_ms;
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Internal requeue ignores pause: the task is already part of the
      // pending set a drain must wait for.
      queue_.push_back(std::move(task));
      in_flight_--;
      work_cv_.notify_one();
    }
  }
}

}  // namespace diffindex
