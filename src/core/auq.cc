#include "core/auq.h"

#include <algorithm>
#include <chrono>

#include "fault/failpoint.h"
#include "util/logging.h"

namespace diffindex {

AsyncUpdateQueue::AsyncUpdateQueue(const AuqOptions& options,
                                   Processor processor)
    : options_(options), processor_(std::move(processor)) {
  if (options_.metrics != nullptr) {
    depth_gauge_ = options_.metrics->GetGauge("auq.depth");
    dead_letter_gauge_ = options_.metrics->GetGauge("auq.dead_letters");
    enqueued_counter_ = options_.metrics->GetCounter("auq.enqueued");
    processed_counter_ = options_.metrics->GetCounter("auq.processed");
    retries_counter_ = options_.metrics->GetCounter("auq.retries");
    task_micros_hist_ = options_.metrics->GetHistogram("auq.task_micros");
    staleness_hist_ = options_.metrics->GetHistogram("auq.staleness_micros");
  }
  workers_.reserve(options_.worker_threads);
  for (int i = 0; i < options_.worker_threads; i++) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

AsyncUpdateQueue::~AsyncUpdateQueue() { Shutdown(); }

bool AsyncUpdateQueue::Enqueue(IndexTask task) {
  MutexLock lock(mu_);
  intake_cv_.Wait(mu_, [this]() REQUIRES(mu_) {
    if (shutdown_) return true;
    if (paused_ > 0) return false;
    return options_.max_depth == 0 || queue_.size() < options_.max_depth;
  });
  if (shutdown_) return false;
  // "auq.enqueue" models task loss between ack and queue insertion: the
  // caller is told the task is in (true), but it never lands. Only the
  // chaos harness arms this, to prove its oracle catches lost entries.
  if (fault::FailpointRegistry::Global()->Fires("auq.enqueue")) return true;
  queue_.push_back(std::move(task));
  work_cv_.Signal();
  if (enqueued_counter_ != nullptr) enqueued_counter_->Add();
  if (depth_gauge_ != nullptr) depth_gauge_->Add(1);
  return true;
}

void AsyncUpdateQueue::Pause() {
  MutexLock lock(mu_);
  paused_++;
}

void AsyncUpdateQueue::Resume() {
  {
    MutexLock lock(mu_);
    if (paused_ > 0) paused_--;
  }
  intake_cv_.SignalAll();
}

void AsyncUpdateQueue::WaitDrained() {
  MutexLock lock(mu_);
  drained_cv_.Wait(mu_, [this]() REQUIRES(mu_) {
    return shutdown_ || (queue_.empty() && in_flight_ == 0);
  });
}

void AsyncUpdateQueue::Shutdown() { ShutdownInternal(/*abandon=*/false); }

void AsyncUpdateQueue::Abandon() { ShutdownInternal(/*abandon=*/true); }

void AsyncUpdateQueue::ShutdownInternal(bool abandon) {
  {
    MutexLock lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
    abandoned_ = abandon;
    if (abandon && !queue_.empty()) {
      if (depth_gauge_ != nullptr) {
        depth_gauge_->Sub(static_cast<int64_t>(queue_.size()));
      }
      queue_.clear();
    }
  }
  intake_cv_.SignalAll();
  work_cv_.SignalAll();
  drained_cv_.SignalAll();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  // On abandon, a worker may have re-queued a failing in-flight task after
  // the clear above; those ghosts die here too.
  MutexLock lock(mu_);
  if (abandoned_ && !queue_.empty()) {
    if (depth_gauge_ != nullptr) {
      depth_gauge_->Sub(static_cast<int64_t>(queue_.size()));
    }
    queue_.clear();
  }
}

std::vector<IndexTask> AsyncUpdateQueue::DrainDeadLetters() {
  MutexLock lock(mu_);
  std::vector<IndexTask> out = std::move(dead_letters_);
  dead_letters_.clear();
  if (dead_letter_gauge_ != nullptr && !out.empty()) {
    dead_letter_gauge_->Sub(static_cast<int64_t>(out.size()));
  }
  return out;
}

size_t AsyncUpdateQueue::dead_letters() const {
  MutexLock lock(mu_);
  return dead_letters_.size();
}

size_t AsyncUpdateQueue::depth() const {
  MutexLock lock(mu_);
  return queue_.size() + static_cast<size_t>(in_flight_);
}

uint64_t AsyncUpdateQueue::processed() const {
  return processed_.load(std::memory_order_relaxed);
}

uint64_t AsyncUpdateQueue::retries() const {
  return retries_.load(std::memory_order_relaxed);
}

void AsyncUpdateQueue::WorkerLoop() {
  for (;;) {
    IndexTask task;
    {
      MutexLock lock(mu_);
      work_cv_.Wait(mu_,
                    [this]() REQUIRES(mu_) { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      in_flight_++;
    }

    if (options_.process_delay_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.process_delay_ms));
    }

    Status s = fault::FailpointRegistry::Global()->MaybeFail("auq.process");
    if (s.ok()) {
      // The task carries the trace of the base put that spawned it, so
      // the APS work appears as a child span of the client's request.
      obs::ScopedTraceContext scope(task.trace.active()
                                        ? task.trace.Child()
                                        : obs::TraceContext());
      obs::SpanTimer span(options_.metrics, options_.traces, "aps.task");
      const uint64_t start = TimestampOracle::NowMicros();
      s = processor_(task);
      if (s.ok() && task_micros_hist_ != nullptr) {
        const uint64_t end = TimestampOracle::NowMicros();
        task_micros_hist_->Add(end > start ? end - start : 0);
      }
    }

    if (s.ok()) {
      processed_.fetch_add(1, std::memory_order_relaxed);
      if (processed_counter_ != nullptr) processed_counter_->Add();
      if (depth_gauge_ != nullptr) depth_gauge_->Sub(1);
      const uint64_t count =
          task_counter_.fetch_add(1, std::memory_order_relaxed);
      if (options_.staleness_sample_every > 0 &&
          count % static_cast<uint64_t>(options_.staleness_sample_every) ==
              0) {
        // T2 - T1: base-entry timestamp vs. moment the index update
        // completed, both in microseconds on the same clock.
        const Timestamp now = TimestampOracle::NowMicros();
        if (now > task.ts) {
          staleness_.Add(now - task.ts);
          if (staleness_hist_ != nullptr) staleness_hist_->Add(now - task.ts);
        }
      }
      MutexLock lock(mu_);
      in_flight_--;
      if (queue_.empty() && in_flight_ == 0) drained_cv_.SignalAll();
      intake_cv_.Signal();  // capacity freed
      continue;
    }

    // Failure: retry with backoff until eventual success (the queue keeps
    // the task in_flight through the backoff so WaitDrained stays honest).
    retries_.fetch_add(1, std::memory_order_relaxed);
    if (retries_counter_ != nullptr) retries_counter_->Add();
    task.attempts++;
    if (options_.max_attempts > 0 && task.attempts >= options_.max_attempts) {
      DIFFINDEX_LOG_WARN << "auq: dead-lettering task for index '"
                         << task.index.name << "' row '" << task.row
                         << "' after " << task.attempts
                         << " attempts: " << s.ToString();
      MutexLock lock(mu_);
      dead_letters_.push_back(std::move(task));
      if (dead_letter_gauge_ != nullptr) dead_letter_gauge_->Add(1);
      if (depth_gauge_ != nullptr) depth_gauge_->Sub(1);
      in_flight_--;
      if (queue_.empty() && in_flight_ == 0) drained_cv_.SignalAll();
      intake_cv_.Signal();
      continue;
    }
    const int backoff_ms =
        std::min(task.attempts, 8) * options_.retry_backoff_ms;
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    {
      MutexLock lock(mu_);
      if (abandoned_) {
        // The queue was abandoned (crash) while this task was in flight:
        // it dies undelivered, like the rest of the backlog.
        if (depth_gauge_ != nullptr) depth_gauge_->Sub(1);
        in_flight_--;
        if (queue_.empty() && in_flight_ == 0) drained_cv_.SignalAll();
        continue;
      }
      // Internal requeue ignores pause: the task is already part of the
      // pending set a drain must wait for.
      queue_.push_back(std::move(task));
      in_flight_--;
      work_cv_.Signal();
    }
  }
}

}  // namespace diffindex
