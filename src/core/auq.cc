#include "core/auq.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <tuple>

#include "check/yield.h"
#include "fault/failpoint.h"
#include "util/logging.h"

#ifdef DIFFINDEX_CHECK
#include "check/test_hooks.h"
#endif

namespace diffindex {

AsyncUpdateQueue::AsyncUpdateQueue(const AuqOptions& options,
                                   Processor processor,
                                   BatchProcessor batch_processor)
    : options_(options), processor_(std::move(processor)),
      batch_processor_(std::move(batch_processor)) {
  if (options_.metrics != nullptr) {
    depth_gauge_ = options_.metrics->GetGauge("auq.depth");
    dead_letter_gauge_ = options_.metrics->GetGauge("auq.dead_letters");
    dead_letters_lost_counter_ =
        options_.metrics->GetCounter("recovery.dead_letters_lost");
    enqueued_counter_ = options_.metrics->GetCounter("auq.enqueued");
    processed_counter_ = options_.metrics->GetCounter("auq.processed");
    retries_counter_ = options_.metrics->GetCounter("auq.retries");
    coalesced_counter_ = options_.metrics->GetCounter("auq.coalesced");
    shed_counter_ = options_.metrics->GetCounter("auq.shed");
    degraded_counter_ = options_.metrics->GetCounter("auq.degraded");
    task_micros_hist_ = options_.metrics->GetHistogram("auq.task_micros");
    staleness_hist_ = options_.metrics->GetHistogram("auq.staleness_micros");
    batch_size_hist_ = options_.metrics->GetHistogram("auq.batch_size");
  }
  workers_.reserve(options_.worker_threads);
  // Model-checker handshake: wait until every spawned worker has
  // registered with the active scheduler, so thread ids (and therefore
  // schedule strings) are assigned deterministically.
  const int check_registered = CHECK_SPAWN_SNAPSHOT();
  for (int i = 0; i < options_.worker_threads; i++) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  CHECK_AWAIT_REGISTERED(check_registered + options_.worker_threads);
}

AsyncUpdateQueue::~AsyncUpdateQueue() { Shutdown(); }

bool AsyncUpdateQueue::Enqueue(IndexTask task) {
  // Decision point before the task becomes visible to workers: the
  // explorer branches on enqueue-vs-drain orderings here.
  CHECK_YIELD_RES("auq.enqueue", &mu_);
  MutexLock lock(mu_);
  const bool blocking =
      options_.overflow_policy == AuqOverflowPolicy::kBlock;
  intake_cv_.Wait(mu_, [this, blocking]() REQUIRES(mu_) {
    if (shutdown_) return true;
    if (paused_ > 0) return false;
    // Non-blocking overflow policies still honor the flush barrier
    // (Pause) but never wait for capacity — overflow is resolved below.
    if (!blocking) return true;
    return options_.max_depth == 0 || queue_.size() < options_.max_depth;
  });
  if (shutdown_) return false;
  // "auq.enqueue" models task loss between ack and queue insertion: the
  // caller is told the task is in (true), but it never lands. Only the
  // chaos harness arms this, to prove its oracle catches lost entries.
  if (fault::FailpointRegistry::Global()->Fires("auq.enqueue")) return true;
  if (options_.max_depth > 0 && queue_.size() >= options_.max_depth) {
    if (options_.overflow_policy == AuqOverflowPolicy::kShedToDeadLetter) {
      // "auq.shed" models a crash between the put's ack and the
      // dead-letter record landing: the caller still sees true (the base
      // write is acked) but no repairable record survives. Only the
      // chaos harness arms this; recovery's WAL replay must re-create
      // the index work.
      if (fault::FailpointRegistry::Global()->Fires("auq.shed")) {
        if (shed_counter_ != nullptr) shed_counter_->Add();
        return true;
      }
      DIFFINDEX_LOG_WARN << "auq: shedding task for index '"
                         << task.index.name << "' base table '"
                         << task.base_table << "' row '" << task.row
                         << "' ts " << task.ts << ": queue full ("
                         << queue_.size() << " >= " << options_.max_depth
                         << ")";
      dead_letters_.push_back(std::move(task));
      if (shed_counter_ != nullptr) shed_counter_->Add();
      if (dead_letter_gauge_ != nullptr) dead_letter_gauge_->Add(1);
      return true;
    }
    // kDegradeToAsync: accept beyond the bound; only the accounting
    // differs from a normal enqueue.
    if (degraded_counter_ != nullptr) degraded_counter_->Add();
  }
  queue_.push_back(std::move(task));
  work_cv_.Signal();
  if (enqueued_counter_ != nullptr) enqueued_counter_->Add();
  if (depth_gauge_ != nullptr) depth_gauge_->Add(1);
  return true;
}

void AsyncUpdateQueue::Pause() {
  CHECK_YIELD_RES("auq.pause", &mu_);
  MutexLock lock(mu_);
  paused_++;
}

void AsyncUpdateQueue::Resume() {
  CHECK_YIELD_RES("auq.resume", &mu_);
  {
    MutexLock lock(mu_);
    if (paused_ > 0) paused_--;
  }
  intake_cv_.SignalAll();
}

void AsyncUpdateQueue::WaitDrained() {
  MutexLock lock(mu_);
  drained_cv_.Wait(mu_, [this]() REQUIRES(mu_) {
    return shutdown_ || (queue_.empty() && in_flight_ == 0);
  });
}

void AsyncUpdateQueue::Shutdown() { ShutdownInternal(/*abandon=*/false); }

void AsyncUpdateQueue::Abandon() { ShutdownInternal(/*abandon=*/true); }

void AsyncUpdateQueue::ShutdownInternal(bool abandon) {
  CHECK_YIELD_RES("auq.shutdown", &mu_);
  {
    MutexLock lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
    abandoned_ = abandon;
    if (abandon && !queue_.empty()) {
      if (depth_gauge_ != nullptr) {
        depth_gauge_->Sub(static_cast<int64_t>(QueuedTaskCountLocked()));
      }
      queue_.clear();
    }
    if (abandon && !dead_letters_.empty()) {
      // The dead-letter list was this server's last in-memory record of
      // index updates that exhausted their retries; a crash takes it with
      // the process. Make the loss observable (the recovery counter) and
      // attributable (one line per task, full key context), mirroring the
      // escape-time log in case that one rotated away.
      for (const IndexTask& task : dead_letters_) {
        DIFFINDEX_LOG_WARN << "auq: dead-letter lost at crash: index '"
                           << task.index.name << "' base table '"
                           << task.base_table << "' row '" << task.row
                           << "' ts " << task.ts << " (" << task.attempts
                           << " attempts)";
      }
      if (dead_letters_lost_counter_ != nullptr) {
        dead_letters_lost_counter_->Add(
            static_cast<uint64_t>(dead_letters_.size()));
      }
      if (dead_letter_gauge_ != nullptr) {
        dead_letter_gauge_->Sub(static_cast<int64_t>(dead_letters_.size()));
      }
      dead_letters_.clear();
    }
  }
  intake_cv_.SignalAll();
  work_cv_.SignalAll();
  drained_cv_.SignalAll();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  // On abandon, a worker may have re-queued a failing in-flight task after
  // the clear above; those ghosts die here too.
  MutexLock lock(mu_);
  if (abandoned_ && !queue_.empty()) {
    if (depth_gauge_ != nullptr) {
      depth_gauge_->Sub(static_cast<int64_t>(QueuedTaskCountLocked()));
    }
    queue_.clear();
  }
}

size_t AsyncUpdateQueue::QueuedTaskCountLocked() const {
  size_t n = 0;
  for (const IndexTask& task : queue_) {
    n += 1 + static_cast<size_t>(task.absorbed);
  }
  return n;
}

std::vector<IndexTask> AsyncUpdateQueue::DrainDeadLetters() {
  CHECK_YIELD_RES("auq.dead_letter.drain", &mu_);
  MutexLock lock(mu_);
  std::vector<IndexTask> out = std::move(dead_letters_);
  dead_letters_.clear();
  if (dead_letter_gauge_ != nullptr && !out.empty()) {
    dead_letter_gauge_->Sub(static_cast<int64_t>(out.size()));
  }
  return out;
}

size_t AsyncUpdateQueue::dead_letters() const {
  MutexLock lock(mu_);
  return dead_letters_.size();
}

size_t AsyncUpdateQueue::queued_depth() const {
  MutexLock lock(mu_);
  return QueuedTaskCountLocked();
}

size_t AsyncUpdateQueue::depth() const {
  MutexLock lock(mu_);
  return QueuedTaskCountLocked() + static_cast<size_t>(in_flight_);
}

uint64_t AsyncUpdateQueue::processed() const {
  return processed_.load(std::memory_order_relaxed);
}

uint64_t AsyncUpdateQueue::retries() const {
  return retries_.load(std::memory_order_relaxed);
}

void AsyncUpdateQueue::WorkerLoop() {
  // Under the model checker, workers are daemon threads: they park on
  // the empty queue at quiescence and do not block run completion.
  CHECK_REGISTER_DAEMON("auq.worker");
  if (options_.drain_batch_size > 1) {
    // Batched drain: pop up to drain_batch_size tasks at once and hand
    // them to ProcessBatch. Draining proceeds regardless of Pause() —
    // pause blocks intake only — and every popped task counts as
    // in-flight (including ones it coalesced away earlier), so
    // WaitDrained observes whole batches (§5.3).
    for (;;) {
      std::vector<IndexTask> batch;
      {
        MutexLock lock(mu_);
        work_cv_.Wait(mu_, [this]() REQUIRES(mu_) {
          return shutdown_ || !queue_.empty();
        });
        if (queue_.empty()) {
          if (shutdown_) return;
          continue;
        }
        const size_t n =
            std::min(queue_.size(),
                     static_cast<size_t>(options_.drain_batch_size));
        batch.reserve(n);
        for (size_t i = 0; i < n; i++) {
          in_flight_ += 1 + queue_.front().absorbed;
          batch.push_back(std::move(queue_.front()));
          queue_.pop_front();
        }
      }
      if (batch_size_hist_ != nullptr) batch_size_hist_->Add(batch.size());
      // The batch is popped but not yet applied: enqueues landing here
      // miss this drain unit (they coalesce into the next).
      CHECK_YIELD_RES("auq.drain.pop", &mu_);
      ProcessBatch(std::move(batch));
    }
  }
  for (;;) {
    IndexTask task;
    {
      MutexLock lock(mu_);
      work_cv_.Wait(mu_,
                    [this]() REQUIRES(mu_) { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      in_flight_++;
    }
    // The task is in flight but not yet applied (the AU2..AU4 window of
    // Algorithm 4): base reads racing the apply interleave here.
    CHECK_YIELD_RES("auq.process.begin", &mu_);

    if (options_.process_delay_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.process_delay_ms));
    }

    Status s = fault::FailpointRegistry::Global()->MaybeFail("auq.process");
    if (s.ok()) {
      // The task carries the trace of the base put that spawned it, so
      // the APS work appears as a child span of the client's request.
      obs::ScopedTraceContext scope(task.trace.active()
                                        ? task.trace.Child()
                                        : obs::TraceContext());
      obs::SpanTimer span(options_.metrics, options_.traces, "aps.task");
      const uint64_t start = TimestampOracle::NowMicros();
      s = processor_(task);
      if (s.ok() && task_micros_hist_ != nullptr) {
        const uint64_t end = TimestampOracle::NowMicros();
        task_micros_hist_->Add(end > start ? end - start : 0);
      }
    }

    if (s.ok()) {
      processed_.fetch_add(1, std::memory_order_relaxed);
      if (processed_counter_ != nullptr) processed_counter_->Add();
      if (depth_gauge_ != nullptr) depth_gauge_->Sub(1);
      const uint64_t count =
          task_counter_.fetch_add(1, std::memory_order_relaxed);
      if (options_.staleness_sample_every > 0 &&
          count % static_cast<uint64_t>(options_.staleness_sample_every) ==
              0) {
        // T2 - T1: base-entry timestamp vs. moment the index update
        // completed, both in microseconds on the same clock.
        const Timestamp now = TimestampOracle::NowMicros();
        if (now > task.ts) {
          staleness_.Add(now - task.ts);
          if (staleness_hist_ != nullptr) staleness_hist_->Add(now - task.ts);
        }
      }
      MutexLock lock(mu_);
      in_flight_--;
      if (queue_.empty() && in_flight_ == 0) drained_cv_.SignalAll();
      intake_cv_.Signal();  // capacity freed
      continue;
    }

    // Failure: retry with backoff until eventual success (the queue keeps
    // the task in_flight through the backoff so WaitDrained stays honest).
    retries_.fetch_add(1, std::memory_order_relaxed);
    if (retries_counter_ != nullptr) retries_counter_->Add();
    task.attempts++;
    if (options_.max_attempts > 0 && task.attempts >= options_.max_attempts) {
      // Full key context at escape time: the dead-letter list is
      // in-memory only, so if this server later crashes this line is the
      // only durable record an operator (or a Cleanse run) can repair
      // from.
      DIFFINDEX_LOG_WARN << "auq: dead-lettering task for index '"
                         << task.index.name << "' base table '"
                         << task.base_table << "' row '" << task.row
                         << "' ts " << task.ts << " after " << task.attempts
                         << " attempts: " << s.ToString();
      MutexLock lock(mu_);
      // "auq.dead_letter" models a crash between the escape decision and
      // the in-memory record landing: the task is already off the queue,
      // its base write stays acked, and only the warning line above
      // survives. Only the chaos harness arms it; a Cleanse sweep or
      // WAL-replay recovery must re-create the index work.
      if (fault::FailpointRegistry::Global()->Fires("auq.dead_letter")) {
        if (depth_gauge_ != nullptr) depth_gauge_->Sub(1);
        in_flight_--;
        if (queue_.empty() && in_flight_ == 0) drained_cv_.SignalAll();
        intake_cv_.Signal();
        continue;
      }
      dead_letters_.push_back(std::move(task));
      if (dead_letter_gauge_ != nullptr) dead_letter_gauge_->Add(1);
      if (depth_gauge_ != nullptr) depth_gauge_->Sub(1);
      in_flight_--;
      if (queue_.empty() && in_flight_ == 0) drained_cv_.SignalAll();
      intake_cv_.Signal();
      continue;
    }
    const int backoff_ms =
        std::min(task.attempts, 8) * options_.retry_backoff_ms;
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    {
      MutexLock lock(mu_);
      if (abandoned_) {
        // The queue was abandoned (crash) while this task was in flight:
        // it dies undelivered, like the rest of the backlog.
        if (depth_gauge_ != nullptr) depth_gauge_->Sub(1);
        in_flight_--;
        if (queue_.empty() && in_flight_ == 0) drained_cv_.SignalAll();
        continue;
      }
      // Internal requeue ignores pause: the task is already part of the
      // pending set a drain must wait for.
      queue_.push_back(std::move(task));
      in_flight_--;
      work_cv_.Signal();
    }
  }
}

void AsyncUpdateQueue::ProcessBatch(std::vector<IndexTask> batch) {
  // Coalesce per (index, base table, row): the task with the newest base
  // timestamp survives and writes the only PI. Every absorbed task's
  // RB/DI anchor is kept in covered_old_ts — the survivor retracts at
  // each of them, because an absorbed task's entry may already be in the
  // index (crash replay, duplicate delivery) and skipping its delete
  // would leave a phantom entry (see DESIGN.md "Batched maintenance").
  std::vector<IndexTask> survivors;
  survivors.reserve(batch.size());
  {
    std::map<std::tuple<std::string, std::string, std::string>, size_t>
        by_key;
    int64_t absorbed_now = 0;
    for (IndexTask& task : batch) {
      if (task.old_ts == 0) task.old_ts = task.ts;
      auto key =
          std::make_tuple(task.index.name, task.base_table, task.row);
      auto it = by_key.find(key);
      if (it == by_key.end()) {
        by_key.emplace(std::move(key), survivors.size());
        survivors.push_back(std::move(task));
        continue;
      }
      IndexTask& kept = survivors[it->second];
      const int merged_attempts = std::max(kept.attempts, task.attempts);
      std::vector<Timestamp> covered = std::move(kept.covered_old_ts);
      covered.insert(covered.end(), task.covered_old_ts.begin(),
                     task.covered_old_ts.end());
      if (task.ts > kept.ts) {
        covered.push_back(kept.old_ts);
        task.absorbed += kept.absorbed + 1;
        kept = std::move(task);
      } else {
        covered.push_back(task.old_ts);
        kept.absorbed += task.absorbed + 1;
      }
      kept.covered_old_ts = std::move(covered);
      kept.attempts = merged_attempts;
      absorbed_now++;
    }
    if (coalesced_counter_ != nullptr && absorbed_now > 0) {
      coalesced_counter_->Add(absorbed_now);
    }
  }

#ifdef DIFFINDEX_CHECK
  // Mutation hook (tests/check/mutation_regression_test.cc): the PR-4
  // min-anchor coalescing bug. Collapsing a survivor's retraction
  // anchors to the single minimum point drops the anchors that read the
  // superseded values, leaving their index entries unretracted.
  if (check::test_hooks::buggy_min_anchor_coalescing.load(
          std::memory_order_relaxed)) {
    for (IndexTask& task : survivors) {
      if (task.covered_old_ts.empty()) continue;
      Timestamp anchor = task.old_ts;
      for (const Timestamp t : task.covered_old_ts) {
        anchor = std::min(anchor, t);
      }
      task.old_ts = anchor;
      task.covered_old_ts.clear();
    }
  }
#endif
  // Survivors are fixed; the batched apply (resolve + stage + one
  // shipped RPC) races base writes from here on.
  CHECK_YIELD_RES("auq.coalesce", &mu_);

  if (options_.process_delay_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.process_delay_ms));
  }

  std::vector<Status> statuses(survivors.size(), Status::OK());
  Status batch_status =
      fault::FailpointRegistry::Global()->MaybeFail("auq.batch");
  if (batch_status.ok()) {
    // The batch is one APS drain unit: chain its span to the first traced
    // member (a batch mixes many client requests; one parent is picked).
    const IndexTask* traced = nullptr;
    for (const IndexTask& task : survivors) {
      if (task.trace.active()) {
        traced = &task;
        break;
      }
    }
    obs::ScopedTraceContext scope(traced != nullptr ? traced->trace.Child()
                                                    : obs::TraceContext());
    obs::SpanTimer span(options_.metrics, options_.traces, "aps.task");
    const uint64_t start = TimestampOracle::NowMicros();
    if (batch_processor_ != nullptr) {
      batch_processor_(survivors, &statuses);
    } else {
      for (size_t i = 0; i < survivors.size(); i++) {
        statuses[i] = processor_(survivors[i]);
      }
    }
    bool any_ok = false;
    for (const Status& s : statuses) {
      if (s.ok()) any_ok = true;
    }
    if (any_ok && task_micros_hist_ != nullptr) {
      const uint64_t end = TimestampOracle::NowMicros();
      task_micros_hist_->Add(end > start ? end - start : 0);
    }
  } else {
    for (Status& s : statuses) s = batch_status;
  }

  // Terminal accounting. A survivor stands for 1 + absorbed accepted
  // tasks; every counter/gauge moves by that amount so drain barriers and
  // `processed == accepted` assertions stay exact under coalescing.
  std::vector<IndexTask> requeue;
  for (size_t i = 0; i < survivors.size(); i++) {
    IndexTask& task = survivors[i];
    const int count = 1 + task.absorbed;
    if (statuses[i].ok()) {
      processed_.fetch_add(static_cast<uint64_t>(count),
                           std::memory_order_relaxed);
      if (processed_counter_ != nullptr) processed_counter_->Add(count);
      if (depth_gauge_ != nullptr) depth_gauge_->Sub(count);
      const uint64_t sampled =
          task_counter_.fetch_add(1, std::memory_order_relaxed);
      if (options_.staleness_sample_every > 0 &&
          sampled %
                  static_cast<uint64_t>(options_.staleness_sample_every) ==
              0) {
        const Timestamp now = TimestampOracle::NowMicros();
        if (now > task.ts) {
          staleness_.Add(now - task.ts);
          if (staleness_hist_ != nullptr) staleness_hist_->Add(now - task.ts);
        }
      }
      MutexLock lock(mu_);
      in_flight_ -= count;
      if (queue_.empty() && in_flight_ == 0) drained_cv_.SignalAll();
      intake_cv_.Signal();
      continue;
    }

    retries_.fetch_add(1, std::memory_order_relaxed);
    if (retries_counter_ != nullptr) retries_counter_->Add();
    task.attempts++;
    if (options_.max_attempts > 0 && task.attempts >= options_.max_attempts) {
      // Same escape-time contract as the unbatched path: log the full
      // key so the task is reconstructible after a crash loses the
      // in-memory dead-letter list.
      DIFFINDEX_LOG_WARN << "auq: dead-lettering task for index '"
                         << task.index.name << "' base table '"
                         << task.base_table << "' row '" << task.row
                         << "' ts " << task.ts << " after " << task.attempts
                         << " attempts: " << statuses[i].ToString();
      MutexLock lock(mu_);
      // Same crash window as the unbatched escape: see "auq.dead_letter"
      // in WorkerLoop. The batch bookkeeping must still run or the
      // in-flight count wedges WaitDrained.
      if (fault::FailpointRegistry::Global()->Fires("auq.dead_letter")) {
        if (depth_gauge_ != nullptr) depth_gauge_->Sub(count);
        in_flight_ -= count;
        if (queue_.empty() && in_flight_ == 0) drained_cv_.SignalAll();
        intake_cv_.Signal();
        continue;
      }
      dead_letters_.push_back(std::move(task));
      if (dead_letter_gauge_ != nullptr) dead_letter_gauge_->Add(1);
      if (depth_gauge_ != nullptr) depth_gauge_->Sub(count);
      in_flight_ -= count;
      if (queue_.empty() && in_flight_ == 0) drained_cv_.SignalAll();
      intake_cv_.Signal();
      continue;
    }
    requeue.push_back(std::move(task));
  }
  if (requeue.empty()) return;

  // One backoff per failed batch (the failures share a cause: the index
  // region is down or the batched RPC bounced). The tasks stay in-flight
  // through the sleep so WaitDrained stays honest.
  int worst_attempts = 0;
  for (const IndexTask& task : requeue) {
    worst_attempts = std::max(worst_attempts, task.attempts);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(
      std::min(worst_attempts, 8) * options_.retry_backoff_ms));
  MutexLock lock(mu_);
  for (IndexTask& task : requeue) {
    const int count = 1 + task.absorbed;
    if (abandoned_) {
      // Abandoned (crash) mid-batch: the backlog dies undelivered.
      if (depth_gauge_ != nullptr) depth_gauge_->Sub(count);
      in_flight_ -= count;
      continue;
    }
    // Internal requeue ignores pause: the tasks are already part of the
    // pending set a drain must wait for. The survivor keeps its absorbed
    // count — the retried batched delivery covers the coalesced tasks too.
    queue_.push_back(std::move(task));
    in_flight_ -= count;
    work_cv_.Signal();
  }
  if (queue_.empty() && in_flight_ == 0) drained_cv_.SignalAll();
}

}  // namespace diffindex
