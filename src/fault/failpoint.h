// Deterministic fault injection: a process-global registry of named
// failpoints consulted at load-bearing sites (WAL append/sync, memtable
// flush, SSTable build, AUQ enqueue/drain, sync-scheme PI/RB/DI steps,
// region open). Modeled after RocksDB's SyncPoint / fail-rs: sites are
// zero-cost when nothing is armed (one relaxed atomic load), and every
// probabilistic policy carries its own seed so a failing schedule replays
// bit-for-bit.
//
// Sites call one of:
//   DIFFINDEX_FAILPOINT("wal.append");            // early-return the error
//   if (fault::FailpointRegistry::Global()->Fires("auq.drain")) { ...skip... }
//
// Policies:
//   kErrorOnce     - fail the first hit after arming, then disarm itself.
//   kErrorEveryNth - fail hit N, 2N, 3N, ... (1-based hit count).
//   kProbability   - fail each hit with probability p, seeded PRNG.
//   kCrash         - invoke the registered crash handler (the chaos harness
//                    maps it to Cluster::SilentlyCrashServer) and fail the
//                    hit. The handler runs on the hitting thread, so it must
//                    only *request* the crash (enqueue for the harness loop),
//                    never join the thread it is called from.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/mutex.h"
#include "util/random.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace diffindex {
namespace obs {
class MetricsRegistry;
}  // namespace obs

namespace fault {

struct FailpointPolicy {
  enum class Mode {
    kOff,
    kErrorOnce,
    kErrorEveryNth,
    kProbability,
    kCrash,
  };

  Mode mode = Mode::kOff;
  // Status returned by MaybeFail() when the point fires. Copied per fire.
  Status error = Status::IOError("injected fault");
  // kErrorEveryNth: fire on every nth hit (1 = every hit).
  uint64_t nth = 1;
  // kProbability / kCrash: chance in [0,1] that a hit fires.
  double probability = 1.0;
  // Seed for the per-point PRNG driving kProbability decisions.
  uint64_t seed = 0;

  static FailpointPolicy Off() { return {}; }
  static FailpointPolicy ErrorOnce(Status error = Status::IOError("injected fault"));
  static FailpointPolicy ErrorEveryNth(uint64_t nth,
                                       Status error = Status::IOError("injected fault"));
  static FailpointPolicy WithProbability(double p, uint64_t seed,
                                         Status error = Status::IOError("injected fault"));
  static FailpointPolicy Crash(double p = 1.0, uint64_t seed = 0);
};

class FailpointRegistry {
 public:
  // Process-wide instance used by all instrumented sites. Never deleted.
  static FailpointRegistry* Global();

  FailpointRegistry() = default;
  FailpointRegistry(const FailpointRegistry&) = delete;
  FailpointRegistry& operator=(const FailpointRegistry&) = delete;

  void Arm(const std::string& name, FailpointPolicy policy);
  void Disarm(const std::string& name);
  void DisarmAll();
  bool IsArmed(const std::string& name) const;

  // Consults the point: OK when off or when this hit does not fire,
  // otherwise the policy's error Status. For kCrash points the crash
  // handler is invoked before returning the error.
  Status MaybeFail(const std::string& name);

  // Boolean form for sites whose failure reaction is not an early return
  // (e.g. "skip the drain-before-flush barrier"). Advances the same
  // per-point state as MaybeFail.
  bool Fires(const std::string& name);

  // Diagnostics: hits = times an armed point was consulted, fires = times
  // it actually injected. Both reset when the point is (re)armed.
  uint64_t hits(const std::string& name) const;
  uint64_t fires(const std::string& name) const;

  // Every fire bumps counter "fault.injected.<name>" in this registry.
  // Pass nullptr to detach (e.g. before the registry's owner dies).
  void SetMetrics(obs::MetricsRegistry* metrics);
  obs::MetricsRegistry* metrics() const;

  // Invoked (synchronously, on the hitting thread) when a kCrash point
  // fires, with the point name. See the kCrash caveat above.
  using CrashHandler = std::function<void(const std::string& point)>;
  void SetCrashHandler(CrashHandler handler);

 private:
  struct Point {
    FailpointPolicy policy;
    Random rng{1};
    uint64_t hits = 0;
    uint64_t fires = 0;
  };

  mutable Mutex mu_;
  std::unordered_map<std::string, Point> points_ GUARDED_BY(mu_);
  // Fast path: sites skip the lock entirely while nothing is armed.
  std::atomic<int> armed_count_{0};
  obs::MetricsRegistry* metrics_ GUARDED_BY(mu_) = nullptr;
  CrashHandler crash_handler_ GUARDED_BY(mu_);
};

// RAII guard for tests: disarms everything (and detaches metrics/handler
// from the global registry) on scope exit so schedules don't leak into the
// next test case.
class ScopedFailpointCleanup {
 public:
  ScopedFailpointCleanup() = default;
  ~ScopedFailpointCleanup();
};

}  // namespace fault
}  // namespace diffindex

// Early-return helper for Status-returning functions.
#define DIFFINDEX_FAILPOINT(name)                                              \
  do {                                                                         \
    ::diffindex::Status _fp_status =                                           \
        ::diffindex::fault::FailpointRegistry::Global()->MaybeFail(name);      \
    if (!_fp_status.ok()) return _fp_status;                                   \
  } while (0)
