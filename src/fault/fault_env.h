// FaultEnv: an Env decorator that injects I/O faults on the real write and
// read paths, so torn WAL tails and partial flushes come from the code that
// actually produces the bytes rather than from hand-edited files.
//
// Faults are declared as rules matched by path substring. A short-write rule
// with byte_budget B lets a file absorb B bytes, writes the prefix of the
// crossing append, and fails it — exactly the shape of a torn record left by
// a crash mid-write. Disk-full refuses the crossing append without writing.
// All probabilistic decisions come from one seeded PRNG so a chaos schedule
// replays deterministically.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/env.h"
#include "util/mutex.h"
#include "util/random.h"
#include "util/thread_annotations.h"

namespace diffindex {
namespace obs {
class MetricsRegistry;
}  // namespace obs

namespace fault {

class FaultEnv final : public Env {
 public:
  struct Rule {
    enum class Kind {
      kAppendError,  // fail qualifying appends without writing anything
      kShortWrite,   // write a prefix of the crossing append, then fail
      kDiskFull,     // refuse the crossing append entirely
      kSyncError,    // fail Sync()
      kReadError,    // fail random-access / sequential reads
    };

    // Applies to files whose path contains this substring ("" = all files).
    std::string path_substring;
    Kind kind = Kind::kAppendError;
    // kShortWrite / kDiskFull: bytes a matching file may absorb (through
    // this env, since open) before the rule triggers.
    uint64_t byte_budget = 0;
    // Chance in [0,1] a qualifying operation is hit (budget rules always
    // trigger once crossed; probability gates error rules).
    double probability = 1.0;
  };

  // Decorates base (not owned; typically Env::Default()).
  explicit FaultEnv(Env* base);
  ~FaultEnv() override = default;

  void AddRule(const Rule& rule);
  void ClearRules();
  void SetSeed(uint64_t seed);
  // Bumps "fault.env.<kind>" counters on every injection. Pass nullptr to
  // detach before the registry's owner dies.
  void SetMetrics(obs::MetricsRegistry* metrics);
  // Total faults injected since construction (not reset by ClearRules).
  uint64_t injected() const;

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;
  Status NewRandomAccessFile(const std::string& fname,
                             std::unique_ptr<RandomAccessFile>* result) override;
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override;
  bool FileExists(const std::string& fname) override;
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override;
  Status RemoveFile(const std::string& fname) override;
  Status CreateDirIfMissing(const std::string& dirname) override;
  Status RemoveDirRecursively(const std::string& dirname) override;
  Status GetFileSize(const std::string& fname, uint64_t* size) override;
  Status RenameFile(const std::string& src, const std::string& target) override;

 private:
  friend class FaultWritableFile;
  friend class FaultRandomAccessFile;
  friend class FaultSequentialFile;

  struct WriteDecision {
    bool fail = false;
    // Bytes of the append to pass through before failing (short write);
    // 0 with fail=true means nothing is written (append error / disk full).
    uint64_t allowed = 0;
    Status error;
  };

  // written = bytes this file already absorbed; size = this append's size.
  WriteDecision DecideWrite(const std::string& path, uint64_t written,
                            uint64_t size);
  Status DecideSync(const std::string& path);
  Status DecideRead(const std::string& path);
  void Count(const char* kind);

  Env* const base_;
  mutable Mutex mu_;
  std::vector<Rule> rules_ GUARDED_BY(mu_);
  Random rng_ GUARDED_BY(mu_){0};
  obs::MetricsRegistry* metrics_ GUARDED_BY(mu_) = nullptr;
  std::atomic<uint64_t> injected_{0};
};

}  // namespace fault
}  // namespace diffindex
