#include "fault/failpoint.h"

#include "obs/metrics.h"
#include "util/logging.h"

namespace diffindex {
namespace fault {

FailpointPolicy FailpointPolicy::ErrorOnce(Status error) {
  FailpointPolicy p;
  p.mode = Mode::kErrorOnce;
  p.error = std::move(error);
  return p;
}

FailpointPolicy FailpointPolicy::ErrorEveryNth(uint64_t nth, Status error) {
  FailpointPolicy p;
  p.mode = Mode::kErrorEveryNth;
  p.nth = nth == 0 ? 1 : nth;
  p.error = std::move(error);
  return p;
}

FailpointPolicy FailpointPolicy::WithProbability(double prob, uint64_t seed,
                                                 Status error) {
  FailpointPolicy p;
  p.mode = Mode::kProbability;
  p.probability = prob;
  p.seed = seed;
  p.error = std::move(error);
  return p;
}

FailpointPolicy FailpointPolicy::Crash(double prob, uint64_t seed) {
  FailpointPolicy p;
  p.mode = Mode::kCrash;
  p.probability = prob;
  p.seed = seed;
  p.error = Status::Unavailable("injected crash");
  return p;
}

FailpointRegistry* FailpointRegistry::Global() {
  // NOLINT(diffindex-naked-new): leaked singleton
  static FailpointRegistry* registry = new FailpointRegistry();
  return registry;
}

void FailpointRegistry::Arm(const std::string& name, FailpointPolicy policy) {
  MutexLock lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end()) {
    if (policy.mode == FailpointPolicy::Mode::kOff) return;
    Point point;
    point.rng = Random(policy.seed);
    point.policy = std::move(policy);
    points_.emplace(name, std::move(point));
    armed_count_.fetch_add(1, std::memory_order_release);
    return;
  }
  if (policy.mode == FailpointPolicy::Mode::kOff) {
    points_.erase(it);
    armed_count_.fetch_sub(1, std::memory_order_release);
    return;
  }
  it->second.rng = Random(policy.seed);
  it->second.policy = std::move(policy);
  it->second.hits = 0;
  it->second.fires = 0;
}

void FailpointRegistry::Disarm(const std::string& name) {
  MutexLock lock(mu_);
  if (points_.erase(name) > 0) {
    armed_count_.fetch_sub(1, std::memory_order_release);
  }
}

void FailpointRegistry::DisarmAll() {
  MutexLock lock(mu_);
  armed_count_.fetch_sub(static_cast<int>(points_.size()),
                         std::memory_order_release);
  points_.clear();
}

bool FailpointRegistry::IsArmed(const std::string& name) const {
  MutexLock lock(mu_);
  return points_.find(name) != points_.end();
}

Status FailpointRegistry::MaybeFail(const std::string& name) {
  if (armed_count_.load(std::memory_order_acquire) == 0) return Status::OK();
  Status error;
  bool crash = false;
  CrashHandler handler;
  obs::Counter* counter = nullptr;
  {
    MutexLock lock(mu_);
    auto it = points_.find(name);
    if (it == points_.end()) return Status::OK();
    Point& point = it->second;
    point.hits++;
    bool fires = false;
    switch (point.policy.mode) {
      case FailpointPolicy::Mode::kOff:
        break;
      case FailpointPolicy::Mode::kErrorOnce:
        fires = point.fires == 0;
        break;
      case FailpointPolicy::Mode::kErrorEveryNth:
        fires = point.hits % point.policy.nth == 0;
        break;
      case FailpointPolicy::Mode::kProbability:
      case FailpointPolicy::Mode::kCrash:
        fires = point.rng.NextDouble() < point.policy.probability;
        break;
    }
    if (!fires) return Status::OK();
    point.fires++;
    error = point.policy.error;
    crash = point.policy.mode == FailpointPolicy::Mode::kCrash;
    if (crash) handler = crash_handler_;
    if (metrics_ != nullptr) {
      counter = metrics_->GetCounter("fault.injected." + name);
    }
  }
  // Run side effects outside mu_ so a crash handler (or metrics hook) can
  // consult the registry without self-deadlocking.
  if (counter != nullptr) counter->Add(1);
  if (crash && handler) handler(name);
  return error;
}

bool FailpointRegistry::Fires(const std::string& name) {
  return !MaybeFail(name).ok();
}

uint64_t FailpointRegistry::hits(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.hits;
}

uint64_t FailpointRegistry::fires(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.fires;
}

void FailpointRegistry::SetMetrics(obs::MetricsRegistry* metrics) {
  MutexLock lock(mu_);
  metrics_ = metrics;
}

obs::MetricsRegistry* FailpointRegistry::metrics() const {
  MutexLock lock(mu_);
  return metrics_;
}

void FailpointRegistry::SetCrashHandler(CrashHandler handler) {
  MutexLock lock(mu_);
  crash_handler_ = std::move(handler);
}

ScopedFailpointCleanup::~ScopedFailpointCleanup() {
  FailpointRegistry* registry = FailpointRegistry::Global();
  registry->DisarmAll();
  registry->SetMetrics(nullptr);
  registry->SetCrashHandler(nullptr);
}

}  // namespace fault
}  // namespace diffindex
