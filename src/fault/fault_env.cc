#include "fault/fault_env.h"

#include <atomic>

#include "obs/metrics.h"

namespace diffindex {
namespace fault {

namespace {

bool Matches(const FaultEnv::Rule& rule, const std::string& path) {
  return rule.path_substring.empty() ||
         path.find(rule.path_substring) != std::string::npos;
}

}  // namespace

class FaultWritableFile final : public WritableFile {
 public:
  FaultWritableFile(FaultEnv* env, std::string path,
                    std::unique_ptr<WritableFile> base)
      : env_(env), path_(std::move(path)), base_(std::move(base)) {}

  Status Append(const Slice& data) override {
    FaultEnv::WriteDecision d = env_->DecideWrite(path_, written_, data.size());
    if (!d.fail) {
      Status s = base_->Append(data);
      if (s.ok()) written_ += data.size();
      return s;
    }
    if (d.allowed > 0) {
      // Torn write: the prefix reaches the file, the rest never does.
      Status s = base_->Append(Slice(data.data(), d.allowed));
      if (s.ok()) written_ += d.allowed;
      // Best-effort: this append is already being failed by the injected
      // fault; a flush error here adds nothing the caller can act on.
      base_->Flush().IgnoreError();
    }
    return d.error;
  }

  Status Flush() override { return base_->Flush(); }

  Status Sync() override {
    Status s = env_->DecideSync(path_);
    if (!s.ok()) return s;
    return base_->Sync();
  }

  Status Close() override { return base_->Close(); }

 private:
  FaultEnv* const env_;
  const std::string path_;
  std::unique_ptr<WritableFile> base_;
  uint64_t written_ = 0;
};

class FaultRandomAccessFile final : public RandomAccessFile {
 public:
  FaultRandomAccessFile(FaultEnv* env, std::string path,
                        std::unique_ptr<RandomAccessFile> base)
      : env_(env), path_(std::move(path)), base_(std::move(base)) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    Status s = env_->DecideRead(path_);
    if (!s.ok()) return s;
    return base_->Read(offset, n, result, scratch);
  }

  uint64_t Size() const override { return base_->Size(); }

 private:
  FaultEnv* const env_;
  const std::string path_;
  std::unique_ptr<RandomAccessFile> base_;
};

class FaultSequentialFile final : public SequentialFile {
 public:
  FaultSequentialFile(FaultEnv* env, std::string path,
                      std::unique_ptr<SequentialFile> base)
      : env_(env), path_(std::move(path)), base_(std::move(base)) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    Status s = env_->DecideRead(path_);
    if (!s.ok()) return s;
    return base_->Read(n, result, scratch);
  }

  Status Skip(uint64_t n) override { return base_->Skip(n); }

 private:
  FaultEnv* const env_;
  const std::string path_;
  std::unique_ptr<SequentialFile> base_;
};

FaultEnv::FaultEnv(Env* base) : base_(base) {}

void FaultEnv::AddRule(const Rule& rule) {
  MutexLock lock(mu_);
  rules_.push_back(rule);
}

void FaultEnv::ClearRules() {
  MutexLock lock(mu_);
  rules_.clear();
}

void FaultEnv::SetSeed(uint64_t seed) {
  MutexLock lock(mu_);
  rng_ = Random(seed);
}

void FaultEnv::SetMetrics(obs::MetricsRegistry* metrics) {
  MutexLock lock(mu_);
  metrics_ = metrics;
}

uint64_t FaultEnv::injected() const {
  return injected_.load(std::memory_order_relaxed);
}

void FaultEnv::Count(const char* kind) {
  injected_.fetch_add(1, std::memory_order_relaxed);
  obs::Counter* counter = nullptr;
  {
    MutexLock lock(mu_);
    if (metrics_ != nullptr) {
      counter = metrics_->GetCounter(std::string("fault.env.") + kind);
    }
  }
  if (counter != nullptr) counter->Add(1);
}

FaultEnv::WriteDecision FaultEnv::DecideWrite(const std::string& path,
                                              uint64_t written,
                                              uint64_t size) {
  WriteDecision d;
  const char* kind = nullptr;
  {
    MutexLock lock(mu_);
    for (const Rule& rule : rules_) {
      if (!Matches(rule, path)) continue;
      switch (rule.kind) {
        case Rule::Kind::kAppendError:
          if (rng_.NextDouble() < rule.probability) {
            d.fail = true;
            d.error = Status::IOError("injected append error: " + path);
            kind = "append_error";
          }
          break;
        case Rule::Kind::kShortWrite:
          if (written + size > rule.byte_budget) {
            d.fail = true;
            d.allowed =
                written >= rule.byte_budget ? 0 : rule.byte_budget - written;
            d.error = Status::IOError("injected short write: " + path);
            kind = "short_write";
          }
          break;
        case Rule::Kind::kDiskFull:
          if (written + size > rule.byte_budget) {
            d.fail = true;
            d.error = Status::IOError("injected disk full: " + path);
            kind = "disk_full";
          }
          break;
        case Rule::Kind::kSyncError:
        case Rule::Kind::kReadError:
          break;
      }
      if (d.fail) break;
    }
  }
  if (d.fail) Count(kind);
  return d;
}

Status FaultEnv::DecideSync(const std::string& path) {
  bool fail = false;
  {
    MutexLock lock(mu_);
    for (const Rule& rule : rules_) {
      if (rule.kind != Rule::Kind::kSyncError || !Matches(rule, path)) continue;
      if (rng_.NextDouble() < rule.probability) {
        fail = true;
        break;
      }
    }
  }
  if (!fail) return Status::OK();
  Count("sync_error");
  return Status::IOError("injected sync error: " + path);
}

Status FaultEnv::DecideRead(const std::string& path) {
  bool fail = false;
  {
    MutexLock lock(mu_);
    for (const Rule& rule : rules_) {
      if (rule.kind != Rule::Kind::kReadError || !Matches(rule, path)) continue;
      if (rng_.NextDouble() < rule.probability) {
        fail = true;
        break;
      }
    }
  }
  if (!fail) return Status::OK();
  Count("read_error");
  return Status::IOError("injected read error: " + path);
}

Status FaultEnv::NewWritableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* result) {
  std::unique_ptr<WritableFile> base;
  Status s = base_->NewWritableFile(fname, &base);
  if (!s.ok()) return s;
  // NOLINT(diffindex-naked-new): private-ctor factory
  result->reset(new FaultWritableFile(this, fname, std::move(base)));
  return Status::OK();
}

Status FaultEnv::NewRandomAccessFile(const std::string& fname,
                                     std::unique_ptr<RandomAccessFile>* result) {
  std::unique_ptr<RandomAccessFile> base;
  Status s = base_->NewRandomAccessFile(fname, &base);
  if (!s.ok()) return s;
  // NOLINT(diffindex-naked-new): private-ctor factory
  result->reset(new FaultRandomAccessFile(this, fname, std::move(base)));
  return Status::OK();
}

Status FaultEnv::NewSequentialFile(const std::string& fname,
                                   std::unique_ptr<SequentialFile>* result) {
  std::unique_ptr<SequentialFile> base;
  Status s = base_->NewSequentialFile(fname, &base);
  if (!s.ok()) return s;
  // NOLINT(diffindex-naked-new): private-ctor factory
  result->reset(new FaultSequentialFile(this, fname, std::move(base)));
  return Status::OK();
}

bool FaultEnv::FileExists(const std::string& fname) {
  return base_->FileExists(fname);
}

Status FaultEnv::GetChildren(const std::string& dir,
                             std::vector<std::string>* result) {
  return base_->GetChildren(dir, result);
}

Status FaultEnv::RemoveFile(const std::string& fname) {
  return base_->RemoveFile(fname);
}

Status FaultEnv::CreateDirIfMissing(const std::string& dirname) {
  return base_->CreateDirIfMissing(dirname);
}

Status FaultEnv::RemoveDirRecursively(const std::string& dirname) {
  return base_->RemoveDirRecursively(dirname);
}

Status FaultEnv::GetFileSize(const std::string& fname, uint64_t* size) {
  return base_->GetFileSize(fname, size);
}

Status FaultEnv::RenameFile(const std::string& src, const std::string& target) {
  return base_->RenameFile(src, target);
}

}  // namespace fault
}  // namespace diffindex
