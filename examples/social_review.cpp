// The paper's motivating application (Sections 1 and 3.3): a social
// review site. The Reviews table is partitioned by ReviewID, so answering
// "all reviews for a given product" or "all reviews by a given user"
// needs global secondary indexes on ProductID and UserID.
//
// The second half replays the session-consistency scenario of Section
// 3.3: User 1 posts a review and must see it in his own product listing
// (read-your-write) even though the index is maintained asynchronously,
// while User 2's listing catches up eventually.
//
//   build/examples/example_social_review

#include <cstdio>

#include "cluster/cluster.h"

using namespace diffindex;

namespace {

void ListReviews(const char* who, const std::vector<IndexHit>& hits) {
  printf("%s sees %zu review(s):", who, hits.size());
  for (const auto& hit : hits) printf(" %s", hit.base_row.c_str());
  printf("\n");
}

}  // namespace

int main() {
  ClusterOptions options;
  options.num_servers = 3;
  std::unique_ptr<Cluster> cluster;
  if (!Cluster::Create(options, &cluster).ok()) return 1;

  // Schema of Figure 1: Reviews(ReviewID, UserID, ProductID, Rating...).
  // Two async-session indexes: by product and by user.
  (void)cluster->master()->CreateTable("reviews");
  for (const char* column : {"product_id", "user_id"}) {
    IndexDescriptor index;
    index.name = std::string("by_") + column;
    index.column = column;
    index.scheme = IndexScheme::kAsyncSession;
    if (!cluster->master()->CreateIndex("reviews", index).ok()) return 1;
  }

  auto user1 = cluster->NewDiffIndexClient();
  auto user2 = cluster->NewDiffIndexClient();

  // Seed a few existing reviews (plain puts; the AUQ indexes them).
  auto seed = cluster->NewDiffIndexClient();
  (void)seed->Put("reviews", "1f-r100",
                  {Cell{"product_id", "productB", false},
                   Cell{"user_id", "user9", false},
                   Cell{"rating", "4", false}});
  (void)seed->Put("reviews", "8c-r101",
                  {Cell{"product_id", "productA", false},
                   Cell{"user_id", "user7", false},
                   Cell{"rating", "5", false}});

  // --- The Section 3.3 interaction ---
  const SessionId s1 = user1->GetSession();
  const SessionId s2 = user2->GetSession();
  std::vector<IndexHit> hits;

  // time=1: User 1 views reviews for product A; User 2 views product B.
  (void)user1->SessionGetByIndex(s1, "reviews", "by_product_id", "productA",
                                 &hits);
  ListReviews("t=1 user1 (product A)", hits);
  (void)user2->SessionGetByIndex(s2, "reviews", "by_product_id", "productB",
                                 &hits);
  ListReviews("t=1 user2 (product B)", hits);

  // time=2: User 1 posts a review for product A.
  if (!user1->SessionPut(s1, "reviews", "b2-r102",
                         {Cell{"product_id", "productA", false},
                          Cell{"user_id", "user1", false},
                          Cell{"rating", "5", false}})
           .ok()) {
    return 1;
  }
  printf("t=2 user1 posts review b2-r102 for product A\n");

  // time=3: both users list product A. Session consistency guarantees
  // User 1 sees his own review; User 2 has no such guarantee while the
  // asynchronous index catches up.
  (void)user1->SessionGetByIndex(s1, "reviews", "by_product_id", "productA",
                                 &hits);
  ListReviews("t=3 user1 (product A, read-your-write)", hits);
  const bool user1_sees_own =
      std::any_of(hits.begin(), hits.end(), [](const IndexHit& hit) {
        return hit.base_row == "b2-r102";
      });

  (void)user2->SessionGetByIndex(s2, "reviews", "by_product_id", "productA",
                                 &hits);
  ListReviews("t=3 user2 (product A, eventual)", hits);

  // Let the AUQ drain; now everyone agrees.
  for (int i = 0; i < 1000; i++) {
    bool idle = true;
    for (NodeId id : cluster->server_ids()) {
      if (cluster->index_manager(id)->QueueDepth() > 0) idle = false;
    }
    if (idle) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  (void)user2->SessionGetByIndex(s2, "reviews", "by_product_id", "productA",
                                 &hits);
  ListReviews("t=4 user2 (after index catch-up)", hits);

  // Reviews by user: the second index.
  (void)user1->SessionGetByIndex(s1, "reviews", "by_user_id", "user1",
                                 &hits);
  ListReviews("reviews by user1", hits);

  user1->EndSession(s1);
  user2->EndSession(s2);
  return user1_sees_own ? 0 : 1;
}
