// The Diff-Index consistency spectrum (Figure 4): one table per scheme,
// the same update applied to each, and a look at what a reader observes —
// when the index is right, when it is stale, and who pays which cost.
//
//   build/examples/example_consistency_spectrum

#include <cstdio>

#include "cluster/cluster.h"
#include "core/index_codec.h"

using namespace diffindex;

namespace {

void Drain(Cluster* cluster) {
  for (int i = 0; i < 2000; i++) {
    bool idle = true;
    for (NodeId id : cluster->server_ids()) {
      if (cluster->index_manager(id)->QueueDepth() > 0) idle = false;
    }
    if (idle) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// Entries physically present in the index table for a value (no repair,
// no filtering): shows what the maintenance scheme actually wrote.
size_t PhysicalEntries(DiffIndexClient* client, const std::string& table,
                       const std::string& value) {
  IndexDescriptor index;
  if (!client->reader()->FindIndex(table, "by_color", &index).ok()) return 0;
  std::vector<ScannedRow> rows;
  (void)client->raw_client()->ScanRows(index.index_table,
                                       IndexScanStartForValue(value),
                                       IndexScanEndForValue(value),
                                       kMaxTimestamp, 0, &rows);
  return rows.size();
}

}  // namespace

int main() {
  ClusterOptions options;
  options.num_servers = 3;
  std::unique_ptr<Cluster> cluster;
  if (!Cluster::Create(options, &cluster).ok()) return 1;
  auto client = cluster->NewDiffIndexClient();

  const struct {
    const char* table;
    IndexScheme scheme;
    const char* consistency;
  } kSchemes[] = {
      {"t_syncfull", IndexScheme::kSyncFull, "causal consistent"},
      {"t_syncinsert", IndexScheme::kSyncInsert,
       "causal consistent with read-repair"},
      {"t_async", IndexScheme::kAsyncSimple, "eventually consistent"},
      {"t_session", IndexScheme::kAsyncSession, "session consistent"},
  };

  for (const auto& entry : kSchemes) {
    (void)cluster->master()->CreateTable(entry.table);
    IndexDescriptor index;
    index.name = "by_color";
    index.column = "color";
    index.scheme = entry.scheme;
    (void)cluster->master()->CreateIndex(entry.table, index);
  }
  (void)client->raw_client()->RefreshLayout();

  printf("%-13s %-36s %-22s %s\n", "scheme", "consistency (Figure 4)",
         "entries after update", "reader sees");
  printf("%.90s\n",
         "-----------------------------------------------------------------"
         "-------------------------");

  for (const auto& entry : kSchemes) {
    // Insert then update the indexed column: blue -> green.
    (void)client->Put(entry.table, "42-item", {Cell{"color", "blue", false}});
    (void)client->Put(entry.table, "42-item",
                      {Cell{"color", "green", false}});

    const size_t stale_blue = PhysicalEntries(client.get(), entry.table,
                                              "blue");
    const size_t live_green = PhysicalEntries(client.get(), entry.table,
                                              "green");

    std::vector<IndexHit> hits_blue, hits_green;
    (void)client->GetByIndex(entry.table, "by_color", "blue", &hits_blue);
    (void)client->GetByIndex(entry.table, "by_color", "green", &hits_green);

    printf("%-13s %-36s blue:%zu green:%zu          "
           "blue->%zu rows, green->%zu rows\n",
           IndexSchemeName(entry.scheme), entry.consistency, stale_blue,
           live_green, hits_blue.size(), hits_green.size());
  }

  printf("\nAfter the asynchronous queues drain, every scheme converges:\n");
  Drain(cluster.get());
  for (const auto& entry : kSchemes) {
    std::vector<IndexHit> hits_blue, hits_green;
    (void)client->GetByIndex(entry.table, "by_color", "blue", &hits_blue);
    (void)client->GetByIndex(entry.table, "by_color", "green", &hits_green);
    printf("%-13s blue->%zu rows, green->%zu rows\n",
           IndexSchemeName(entry.scheme), hits_blue.size(),
           hits_green.size());
  }
  printf("\nScheme selection guidance (Section 3.4): sync-full when read\n");
  printf("latency is critical; sync-insert when update latency is\n");
  printf("critical; async-simple when consistency is not a concern;\n");
  printf("async-session when read-your-write is needed.\n");
  return 0;
}
