// The Diff-Index consistency spectrum (Figure 4): one table per scheme,
// the same update applied to each, and a look at what a reader observes —
// when the index is right, when it is stale, and who pays which cost.
//
//   build/examples/example_consistency_spectrum

#include <cstdio>

#include "cluster/cluster.h"
#include "core/index_codec.h"

using namespace diffindex;

namespace {

void Drain(Cluster* cluster) {
  for (int i = 0; i < 2000; i++) {
    bool idle = true;
    for (NodeId id : cluster->server_ids()) {
      if (cluster->index_manager(id)->QueueDepth() > 0) idle = false;
    }
    if (idle) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// Entries physically present in the index table for a value (no repair,
// no filtering): shows what the maintenance scheme actually wrote.
size_t PhysicalEntries(DiffIndexClient* client, const std::string& table,
                       const std::string& value) {
  IndexDescriptor index;
  if (!client->reader()->FindIndex(table, "by_color", &index).ok()) return 0;
  std::vector<ScannedRow> rows;
  (void)client->raw_client()->ScanRows(index.index_table,
                                       IndexScanStartForValue(value),
                                       IndexScanEndForValue(value),
                                       kMaxTimestamp, 0, &rows);
  return rows.size();
}

}  // namespace

int main() {
  ClusterOptions options;
  options.num_servers = 3;
  // Sample every APS task so the staleness histogram below is dense.
  options.auq.staleness_sample_every = 1;
  std::unique_ptr<Cluster> cluster;
  if (!Cluster::Create(options, &cluster).ok()) return 1;
  auto client = cluster->NewDiffIndexClient();

  const struct {
    const char* table;
    IndexScheme scheme;
    const char* consistency;
  } kSchemes[] = {
      {"t_syncfull", IndexScheme::kSyncFull, "causal consistent"},
      {"t_syncinsert", IndexScheme::kSyncInsert,
       "causal consistent with read-repair"},
      {"t_async", IndexScheme::kAsyncSimple, "eventually consistent"},
      {"t_session", IndexScheme::kAsyncSession, "session consistent"},
  };

  for (const auto& entry : kSchemes) {
    (void)cluster->master()->CreateTable(entry.table);
    IndexDescriptor index;
    index.name = "by_color";
    index.column = "color";
    index.scheme = entry.scheme;
    (void)cluster->master()->CreateIndex(entry.table, index);
  }
  (void)client->raw_client()->RefreshLayout();

  printf("%-13s %-36s %-22s %s\n", "scheme", "consistency (Figure 4)",
         "entries after update", "reader sees");
  printf("%.90s\n",
         "-----------------------------------------------------------------"
         "-------------------------");

  for (const auto& entry : kSchemes) {
    // Insert then update the indexed column: blue -> green.
    (void)client->Put(entry.table, "42-item", {Cell{"color", "blue", false}});
    (void)client->Put(entry.table, "42-item",
                      {Cell{"color", "green", false}});

    const size_t stale_blue = PhysicalEntries(client.get(), entry.table,
                                              "blue");
    const size_t live_green = PhysicalEntries(client.get(), entry.table,
                                              "green");

    std::vector<IndexHit> hits_blue, hits_green;
    (void)client->GetByIndex(entry.table, "by_color", "blue", &hits_blue);
    (void)client->GetByIndex(entry.table, "by_color", "green", &hits_green);

    printf("%-13s %-36s blue:%zu green:%zu          "
           "blue->%zu rows, green->%zu rows\n",
           IndexSchemeName(entry.scheme), entry.consistency, stale_blue,
           live_green, hits_blue.size(), hits_green.size());
  }

  printf("\nAfter the asynchronous queues drain, every scheme converges:\n");
  Drain(cluster.get());
  for (const auto& entry : kSchemes) {
    std::vector<IndexHit> hits_blue, hits_green;
    (void)client->GetByIndex(entry.table, "by_color", "blue", &hits_blue);
    (void)client->GetByIndex(entry.table, "by_color", "green", &hits_green);
    printf("%-13s blue->%zu rows, green->%zu rows\n",
           IndexSchemeName(entry.scheme), hits_blue.size(),
           hits_green.size());
  }
  // Table 2, measured live: run a burst of updates per scheme and read the
  // I/O it cost out of the cluster's metrics registry — foreground work
  // (paid inside the client's put) vs. background work (paid later by the
  // APS), plus the staleness the deferral left behind.
  printf("\nWhat each update cost (Table 2, measured from the metrics\n");
  printf("registry; per-update averages over %d updates):\n", 50);
  printf("%-13s %8s %8s %8s %8s %8s %14s\n", "scheme", "fg bput", "fg iput",
         "fg bread", "bg iput", "bg bread", "staleness p95");
  for (const auto& entry : kSchemes) {
    const obs::MetricsSnapshot before = cluster->metrics()->Snapshot();
    const int kUpdates = 50;
    for (int i = 0; i < kUpdates; i++) {
      (void)client->Put(entry.table, "55-item",
                        {Cell{"color", i % 2 ? "teal" : "amber", false}});
    }
    Drain(cluster.get());
    const obs::MetricsSnapshot delta =
        cluster->metrics()->Snapshot().Delta(before);
    auto per_update = [&delta, kUpdates](const char* name) {
      auto it = delta.counters.find(name);
      const uint64_t count = it == delta.counters.end() ? 0 : it->second;
      return static_cast<double>(count) / kUpdates;
    };
    double staleness_p95_ms = 0;
    auto hist = delta.histograms.find("auq.staleness_micros");
    if (hist != delta.histograms.end() && hist->second.count > 0) {
      staleness_p95_ms =
          static_cast<double>(hist->second.Percentile(95)) / 1000.0;
    }
    printf("%-13s %8.1f %8.1f %8.1f %8.1f %8.1f %12.2fms\n",
           IndexSchemeName(entry.scheme), per_update("io.base_put"),
           per_update("io.index_put"), per_update("io.base_read"),
           per_update("io.async_index_put"),
           per_update("io.async_base_read"), staleness_p95_ms);
  }
  printf("(sync pays its index I/O in the foreground columns; async defers\n");
  printf("it to the background ones and shows up in staleness instead.)\n");

  printf("\nScheme selection guidance (Section 3.4): sync-full when read\n");
  printf("latency is critical; sync-insert when update latency is\n");
  printf("critical; async-simple when consistency is not a concern;\n");
  printf("async-session when read-your-write is needed.\n");
  return 0;
}
