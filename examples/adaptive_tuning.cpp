// Extension features demo: the workload-aware scheme advisor (the
// paper's Section 3.4 future work) driving live scheme switches, and a
// secondary index on a field inside a dense column (Section 7).
//
//   build/examples/example_adaptive_tuning

#include <cstdio>

#include "cluster/cluster.h"
#include "core/advisor.h"
#include "core/backfill.h"
#include "core/index_codec.h"

using namespace diffindex;

int main() {
  ClusterOptions options;
  options.num_servers = 3;
  std::unique_ptr<Cluster> cluster;
  if (!Cluster::Create(options, &cluster).ok()) return 1;
  auto client = cluster->NewDiffIndexClient();

  // ---- Part 1: a dense column with an index on one field ----
  DenseColumnSchema schema({{"category", DenseFieldType::kString},
                            {"price_cents", DenseFieldType::kUint64},
                            {"rating", DenseFieldType::kDouble}});

  (void)cluster->master()->CreateTable("products");
  IndexDescriptor index;
  index.name = "by_price";
  index.column = "details";  // ONE cell holds category+price+rating
  index.scheme = IndexScheme::kSyncFull;
  index.dense_field = "price_cents";
  index.dense_schema = schema;
  (void)cluster->master()->CreateIndex("products", index);

  auto put_product = [&](const std::string& row, const std::string& cat,
                         uint64_t price, double rating) {
    std::string dense;
    (void)schema.Encode({DenseValue::String(cat), DenseValue::Uint64(price),
                         DenseValue::Double(rating)},
                        &dense);
    (void)client->PutColumn("products", row, "details", dense);
  };
  put_product("1a-hammer", "tools", 1299, 4.5);
  put_product("7c-drill", "tools", 8999, 4.8);
  put_product("c2-gloves", "garden", 799, 3.9);

  std::vector<IndexHit> hits;
  (void)client->RangeByIndex("products", "by_price",
                             EncodeUint64IndexValue(1000),
                             EncodeUint64IndexValue(10000), 0, &hits);
  printf("products priced 10.00-100.00 (via dense-field index): %zu\n",
         hits.size());
  for (const auto& hit : hits) {
    uint64_t price = 0;
    (void)DecodeUint64IndexValue(hit.value_encoded, &price);
    printf("  %-10s %6.2f\n", hit.base_row.c_str(), price / 100.0);
  }

  // ---- Part 2: the scheme advisor reacting to workload phases ----
  printf("\nscheme advisor (Section 3.4 principles):\n");
  struct Phase {
    const char* name;
    IndexWorkloadProfile profile;
  } phases[] = {
      {"bulk ingest (write-heavy, consistent)",
       {.updates = 50000, .reads = 500, .avg_rows_per_read = 1,
        .requires_consistency = true, .requires_read_your_writes = false}},
      {"dashboard serving (read-heavy)",
       {.updates = 200, .reads = 30000, .avg_rows_per_read = 1,
        .requires_consistency = true, .requires_read_your_writes = false}},
      {"clickstream (staleness fine)",
       {.updates = 80000, .reads = 100, .avg_rows_per_read = 1,
        .requires_consistency = false, .requires_read_your_writes = false}},
      {"user-facing feed (see own posts)",
       {.updates = 1000, .reads = 1000, .avg_rows_per_read = 1,
        .requires_consistency = false, .requires_read_your_writes = true}},
  };
  for (const auto& phase : phases) {
    auto rec = SchemeAdvisor::Recommend(phase.profile);
    printf("  %-38s -> %-13s (%s)\n", phase.name,
           IndexSchemeName(rec.scheme), rec.reason.substr(0, 60).c_str());
    // Apply it live; takes effect on the next put.
    (void)cluster->master()->AlterIndexScheme("products", "by_price",
                                              rec.scheme);
    if (rec.cleanse_after_switch_from_insert) {
      IndexBackfill backfill(cluster->NewClient());
      CleanseReport report;
      (void)backfill.Cleanse("products", "by_price", &report);
      if (report.stale_removed > 0) {
        printf("    cleansed %llu stale entries after leaving sync-insert\n",
               static_cast<unsigned long long>(report.stale_removed));
      }
    }
  }

  // The index still answers correctly after all the switching.
  (void)client->GetByIndex("products", "by_price",
                           EncodeUint64IndexValue(1299), &hits);
  printf("\nfinal check: price 12.99 -> %zu row(s) [%s]\n", hits.size(),
         hits.empty() ? "?" : hits[0].base_row.c_str());
  return hits.size() == 1 ? 0 : 1;
}
