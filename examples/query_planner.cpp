// The mini query layer (the Big SQL stand-in of Section 7): declarative
// predicates, EXPLAIN output showing the planner picking index access
// paths, and the latency gap between an index plan and a full scan.
//
//   build/examples/example_query_planner

#include <chrono>
#include <cstdio>

#include "cluster/cluster.h"
#include "core/index_codec.h"
#include "core/query.h"

using namespace diffindex;

namespace {

uint64_t RunTimed(QueryEngine* engine, const Query& query,
                  std::vector<ScannedRow>* rows) {
  const auto start = std::chrono::steady_clock::now();
  Status s = engine->Execute(query, rows);
  if (!s.ok()) fprintf(stderr, "query: %s\n", s.ToString().c_str());
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

int main() {
  ClusterOptions options;
  options.num_servers = 3;
  options.latency.scale = 1.0;  // realistic cost model: show the plan gap
  std::unique_ptr<Cluster> cluster;
  if (!Cluster::Create(options, &cluster).ok()) return 1;

  (void)cluster->master()->CreateTable("products");
  for (auto [name, column] : {std::pair{"by_category", "category"},
                              std::pair{"by_price", "price"}}) {
    IndexDescriptor index;
    index.name = name;
    index.column = column;
    index.scheme = IndexScheme::kSyncFull;
    (void)cluster->master()->CreateIndex("products", index);
  }

  auto client = cluster->NewDiffIndexClient();
  QueryEngine engine(client.get());

  Random rng(99);
  for (int i = 0; i < 2000; i++) {
    char row[20];
    snprintf(row, sizeof(row), "%02x-p%d",
             static_cast<unsigned>(rng.Uniform(256)), i);
    // 200 categories of ~10 products each: category predicates are
    // selective, the regime global indexes are built for (Section 3.1).
    const std::string category = "cat" + std::to_string(i % 200);
    (void)client->Put(
        "products", row,
        {Cell{"category", category, false},
         Cell{"price", EncodeUint64IndexValue(rng.Uniform(100000)), false},
         Cell{"stock", i % 5 == 0 ? "out" : "in", false}});
  }
  // Settle to disk stores so scans pay real (simulated) I/O.
  (void)client->raw_client()->FlushTable("products");
  (void)client->raw_client()->CompactTable("products");
  printf("loaded 2000 products (200 categories; two indexes; on disk)\n\n");

  struct Example {
    const char* description;
    Query query;
  } examples[] = {
      {"category = 'cat42'",
       {"products", {{"category", PredicateOp::kEq, "cat42"}}, {}, 0}},
      {"price in [10000, 11000)",
       {"products",
        {{"price", PredicateOp::kGe, EncodeUint64IndexValue(10000)},
         {"price", PredicateOp::kLt, EncodeUint64IndexValue(11000)}},
        {},
        0}},
      {"category = 'cat7' AND stock = 'out'",
       {"products",
        {{"category", PredicateOp::kEq, "cat7"},
         {"stock", PredicateOp::kEq, "out"}},
        {},
        0}},
      {"stock = 'out'  (no usable index)",
       {"products", {{"stock", PredicateOp::kEq, "out"}}, {}, 0}},
  };

  for (auto& example : examples) {
    std::string plan;
    (void)engine.Explain(example.query, &plan);
    std::vector<ScannedRow> rows;
    const uint64_t micros = RunTimed(&engine, example.query, &rows);
    printf("SELECT * WHERE %s\n", example.description);
    printf("  plan: %s\n", plan.c_str());
    printf("  -> %zu rows in %llu us\n\n", rows.size(),
           static_cast<unsigned long long>(micros));
  }

  printf("Selective predicates resolve through the index in a few\n");
  printf("milliseconds; predicates with no usable index scan and filter\n");
  printf("the whole table — the gap the paper's query-by-index vs\n");
  printf("parallel-scan comparison quantifies (and it widens with table\n");
  printf("size; at the paper's 40M rows it is 2-3 orders of magnitude).\n");
  return 0;
}
