// Failure recovery demo (Section 5.3): write through an async index, then
// crash a region server with data still in its memtables and tasks in its
// AUQ. The master reassigns its regions; the new owners split + replay the
// dead server's WAL, re-enqueue every replayed put into their AUQs, and
// both the base table and the index converge — no separate index log.
//
//   build/examples/example_failure_recovery

#include <cstdio>

#include "cluster/cluster.h"

using namespace diffindex;

namespace {

void Drain(Cluster* cluster) {
  for (int i = 0; i < 5000; i++) {
    bool idle = true;
    for (NodeId id : cluster->server_ids()) {
      if (cluster->index_manager(id)->QueueDepth() > 0) idle = false;
    }
    if (idle) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace

int main() {
  ClusterOptions options;
  options.num_servers = 3;
  std::unique_ptr<Cluster> cluster;
  if (!Cluster::Create(options, &cluster).ok()) return 1;

  (void)cluster->master()->CreateTable("orders");
  IndexDescriptor index;
  index.name = "by_status";
  index.column = "status";
  index.scheme = IndexScheme::kAsyncSimple;
  (void)cluster->master()->CreateIndex("orders", index);

  auto client = cluster->NewDiffIndexClient();
  const int kOrders = 120;
  for (int i = 0; i < kOrders; i++) {
    char row[24];
    snprintf(row, sizeof(row), "%02x-order%d", (i * 7) % 256, i);
    if (!client->Put("orders", row,
                     {Cell{"status", i % 3 == 0 ? "shipped" : "pending",
                           false},
                      Cell{"amount", std::to_string(i * 10), false}})
             .ok()) {
      return 1;
    }
  }
  printf("wrote %d orders across %zu servers (nothing flushed yet)\n",
         kOrders, cluster->server_ids().size());

  // Crash server 2: memtables and queued index work are gone; only the
  // shared WAL and SSTable storage survive.
  printf("crashing region server 2...\n");
  if (!cluster->KillServer(2).ok()) {
    fprintf(stderr, "recovery failed\n");
    return 1;
  }
  printf("master reassigned its regions; WAL split + replayed; re-enqueued\n"
         "index work drained before the recovery flush\n");
  Drain(cluster.get());

  // Verify: every order readable, index complete and correct.
  int readable = 0;
  for (int i = 0; i < kOrders; i++) {
    char row[24];
    snprintf(row, sizeof(row), "%02x-order%d", (i * 7) % 256, i);
    std::string value;
    if (client->Get("orders", row, "status", &value).ok()) readable++;
  }
  std::vector<IndexHit> shipped, pending;
  (void)client->GetByIndex("orders", "by_status", "shipped", &shipped);
  (void)client->GetByIndex("orders", "by_status", "pending", &pending);
  printf("after recovery: %d/%d orders readable; index: %zu shipped + %zu "
         "pending = %zu entries\n",
         readable, kOrders, shipped.size(), pending.size(),
         shipped.size() + pending.size());

  const bool ok = readable == kOrders &&
                  shipped.size() + pending.size() ==
                      static_cast<size_t>(kOrders);
  printf(ok ? "RECOVERY OK\n" : "RECOVERY INCOMPLETE\n");
  return ok ? 0 : 1;
}
