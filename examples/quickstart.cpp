// Quickstart: boot a simulated cluster, create a table with a global
// secondary index, write some rows, and query by index.
//
//   build/examples/example_quickstart

#include <cstdio>

#include "cluster/cluster.h"

using namespace diffindex;

int main() {
  // 1. A three-server cluster (in-process: master, region servers,
  //    WALs and SSTables under a temp directory).
  ClusterOptions options;
  options.num_servers = 3;
  std::unique_ptr<Cluster> cluster;
  Status s = Cluster::Create(options, &cluster);
  if (!s.ok()) {
    fprintf(stderr, "cluster: %s\n", s.ToString().c_str());
    return 1;
  }

  // 2. A `users` table with a sync-full (causal consistent) index on the
  //    `city` column.
  s = cluster->master()->CreateTable("users");
  if (!s.ok()) {
    fprintf(stderr, "create table: %s\n", s.ToString().c_str());
    return 1;
  }
  IndexDescriptor index;
  index.name = "by_city";
  index.column = "city";
  index.scheme = IndexScheme::kSyncFull;
  s = cluster->master()->CreateIndex("users", index);
  if (!s.ok()) {
    fprintf(stderr, "create index: %s\n", s.ToString().c_str());
    return 1;
  }

  // 3. Write rows through the Diff-Index client.
  auto client = cluster->NewDiffIndexClient();
  struct {
    const char* row;
    const char* name;
    const char* city;
  } users[] = {
      {"10-alice", "Alice", "yorktown"},
      {"57-bob", "Bob", "atlanta"},
      {"9a-carol", "Carol", "yorktown"},
      {"e3-dave", "Dave", "mountain view"},
  };
  for (const auto& user : users) {
    s = client->Put("users", user.row,
                    {Cell{"name", user.name, false},
                     Cell{"city", user.city, false}});
    if (!s.ok()) {
      fprintf(stderr, "put: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  // 4. Query by the indexed column: "find all users in yorktown".
  std::vector<ScannedRow> rows;
  s = client->QueryByIndex("users", "by_city", "yorktown", &rows);
  if (!s.ok()) {
    fprintf(stderr, "query: %s\n", s.ToString().c_str());
    return 1;
  }
  printf("users in yorktown:\n");
  for (const auto& row : rows) {
    for (const auto& cell : row.cells) {
      if (cell.column == "name") {
        printf("  %s (row %s)\n", cell.value.c_str(), row.row.c_str());
      }
    }
  }

  // 5. Update a user's city: the index follows synchronously.
  (void)client->PutColumn("users", "10-alice", "city", "atlanta");
  s = client->QueryByIndex("users", "by_city", "atlanta", &rows);
  printf("users in atlanta after Alice moved: %zu\n", rows.size());
  return s.ok() && rows.size() == 2 ? 0 : 1;
}
